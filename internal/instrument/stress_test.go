package instrument

import (
	"strings"
	"testing"

	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
	"deltapath/internal/minivm"
	"deltapath/internal/workload"
)

// stressParams builds a small randomized workload program: virtual
// dispatch, recursion, dynamic loading, library exclusion — all the moving
// parts at once.
func stressParams(seed uint64) workload.Params {
	return workload.Params{
		Name: "stress", Seed: seed,
		LibClasses: 14, LibMethods: 4,
		AppClasses: 10, AppMethods: 3,
		LibFamilies: 4, AppFamilies: 3, FamilySubs: 3,
		Layers: 7, CallsPerMethod: 2,
		VirtualFrac: 0.45, CallbackFrac: 0.06, RecursionFrac: 0.08,
		DynClasses: 2, ExecDepth: 8, LoopTrip: 12,
		WorkUnits: 1, EmitFrac: 0.6,
	}
}

type stressConfig struct {
	name    string
	setting cha.Setting
	cptOn   bool
	maxID   uint64
}

// TestStressRandomWorkloads is the heavyweight end-to-end property test:
// across random programs, dispatch seeds, encoding settings, integer
// widths, and CPT on/off, every context captured at an emit point must
// decode exactly to the ground-truth stack (filtered to analysed methods,
// with gaps where unanalysed code ran), and every encoding key must
// identify exactly one context.
func TestStressRandomWorkloads(t *testing.T) {
	configs := []stressConfig{
		{"all-cpt", cha.EncodingAll, true, 0},
		{"app-cpt", cha.EncodingApplication, true, 0},
		{"all-cpt-w16", cha.EncodingAll, true, 1<<16 - 1},
		{"app-cpt-w12", cha.EncodingApplication, true, 1<<12 - 1},
	}
	progSeeds := []uint64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		progSeeds = progSeeds[:2]
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			checked := 0
			for _, ps := range progSeeds {
				prog, err := stressParams(ps).Generate()
				if err != nil {
					t.Fatal(err)
				}
				checked += stressOne(t, prog, cfg, ps*31+7)
			}
			if checked < 500 {
				t.Fatalf("only %d contexts verified; stress too weak", checked)
			}
			t.Logf("verified %d contexts", checked)
		})
	}
}

func stressOne(t *testing.T, prog *minivm.Program, cfg stressConfig, dispatchSeed uint64) int {
	t.Helper()
	build, err := cha.Build(prog, cha.Options{Setting: cfg.setting, KeepUnreachable: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Encode(build.Graph, core.Options{MaxID: cfg.maxID})
	if err != nil {
		t.Fatalf("encode (maxID %d): %v", cfg.maxID, err)
	}
	var cp *cpt.Plan
	if cfg.cptOn {
		cp = cpt.Compute(build.Graph)
	}
	plan, err := NewPlan(build, res.Spec, cp)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(plan)
	vm, err := minivm.NewVM(prog, dispatchSeed)
	if err != nil {
		t.Fatal(err)
	}
	vm.SetProbes(enc)
	vm.SetInstrumented(plan.InstrumentedMethods())
	dec := encoding.NewDecoder(res.Spec)
	keyCtx := make(map[string]string)
	checked := 0
	vm.OnEmit = func(v *minivm.VM, m minivm.MethodRef, _ string) {
		node, known := build.NodeOf[m]
		if !known {
			return
		}
		st := enc.State().Snapshot()
		var truth []string
		for _, f := range v.Stack() {
			if _, ok := build.NodeOf[f]; ok {
				truth = append(truth, f.String())
			}
		}
		truthStr := strings.Join(truth, ">")
		key := st.Key(node)
		if prev, dup := keyCtx[key]; dup {
			if prev != truthStr {
				t.Fatalf("[%s] key collision: %q is both %q and %q", cfg.name, key, prev, truthStr)
			}
		} else {
			keyCtx[key] = truthStr
		}
		names, err := dec.DecodeNames(st, node)
		if err != nil {
			t.Fatalf("[%s] decode at %s (truth %s): %v", cfg.name, m, truthStr, err)
		}
		var got []string
		for _, n := range names {
			if n != "..." {
				got = append(got, n)
			}
		}
		if strings.Join(got, ">") != truthStr {
			t.Fatalf("[%s] mismatch at %s:\n got  %v\n want %s", cfg.name, m, names, truthStr)
		}
		checked++
		if cfg.maxID != 0 && st.ID > cfg.maxID {
			t.Fatalf("[%s] runtime ID %d exceeds width limit %d", cfg.name, st.ID, cfg.maxID)
		}
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if d := enc.State().Depth(); d != 1 || enc.State().ID != 0 {
		t.Fatalf("[%s] encoder unbalanced after run", cfg.name)
	}
	return checked
}
