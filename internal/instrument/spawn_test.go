package instrument

import (
	"strings"
	"testing"

	"deltapath/internal/callgraph"
	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
	"deltapath/internal/lang"
	"deltapath/internal/minivm"
)

// spawnProgram: main spawns two worker tasks; workers share helpers with
// main-rooted code; one worker is also callable directly.
const spawnProgram = `
entry Main.main
class Main {
  method main {
    spawn Worker.run
    spawn Worker.drain
    call Worker.run          # also invoked synchronously
    loop 2 { call Util.tick }
    emit main_done
  }
}
class Worker {
  method run { call Util.tick; emit ran }
  method drain { loop 3 { call Util.tick } vcall Sink.put; emit drained }
}
class Util { method tick { emit tick } }
class Sink { method put { emit put } }
class Sink2 extends Sink { method put { call Util.tick; emit put } }
`

func TestSpawnContextsRootAtTaskEntry(t *testing.T) {
	prog := lang.MustParse(spawnProgram)
	build, err := cha.Build(prog, cha.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(build.SpawnEntries) != 2 {
		t.Fatalf("spawn entries = %v, want Worker.run and Worker.drain", build.SpawnEntries)
	}
	var anchors []callgraph.NodeID
	for _, sp := range build.SpawnEntries {
		anchors = append(anchors, build.NodeOf[sp])
	}
	res, err := core.Encode(build.Graph, core.Options{ForceAnchors: anchors})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(build, res.Spec, cpt.Compute(build.Graph))
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(plan)
	vm, err := minivm.NewVM(prog, 3)
	if err != nil {
		t.Fatal(err)
	}
	vm.SetProbes(enc)
	vm.SetInstrumented(plan.InstrumentedMethods())
	dec := encoding.NewDecoder(res.Spec)
	taskRooted := 0
	vm.OnEmit = func(v *minivm.VM, m minivm.MethodRef, _ string) {
		node, known := build.NodeOf[m]
		if !known {
			return
		}
		names, err := dec.DecodeNames(enc.State().Snapshot(), node)
		if err != nil {
			t.Fatalf("decode at %s: %v", m, err)
		}
		var truth []string
		for _, f := range v.Stack() {
			truth = append(truth, f.String())
		}
		var got []string
		for _, n := range names {
			if n != "..." {
				got = append(got, n)
			}
		}
		if strings.Join(got, ">") != strings.Join(truth, ">") {
			t.Fatalf("spawn decode mismatch at %s:\n got  %v\n want %v", m, names, truth)
		}
		if len(truth) > 0 && strings.HasPrefix(truth[0], "Worker.") {
			taskRooted++
		}
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if vm.Tasks != 2 {
		t.Fatalf("executor ran %d tasks, want 2", vm.Tasks)
	}
	if taskRooted == 0 {
		t.Fatal("no contexts rooted at a task entry were verified")
	}
}

func TestSpawnViaPublicAPI(t *testing.T) {
	// The root-package Analyze wires spawn entries automatically; this
	// mirrors what library users get.
	prog := lang.MustParse(spawnProgram)
	build, err := cha.Build(prog, cha.Options{KeepUnreachable: true})
	if err != nil {
		t.Fatal(err)
	}
	var anchors []callgraph.NodeID
	for _, sp := range build.SpawnEntries {
		anchors = append(anchors, build.NodeOf[sp])
	}
	res, err := core.Encode(build.Graph, core.Options{ForceAnchors: anchors})
	if err != nil {
		t.Fatal(err)
	}
	// Spawn entries are runtime anchors.
	for _, sp := range build.SpawnEntries {
		if !res.Spec.Anchors[build.NodeOf[sp]] {
			t.Fatalf("spawn entry %s is not an anchor", sp)
		}
	}
}
