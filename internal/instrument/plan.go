// Package instrument binds the graph-level output of an encoding analysis
// (an encoding.Spec plus, optionally, a cpt.Plan) to a concrete minivm
// program, playing the role the Javassist-based Java agent plays in the
// paper's implementation (Section 5): it decides, per call site and per
// method entry, exactly which constant-time operations run, and provides
// the runtime Encoder that executes them as the program runs.
package instrument

import (
	"fmt"

	"deltapath/internal/callgraph"
	"deltapath/internal/cha"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
	"deltapath/internal/minivm"
)

// sitePayload is the instrumentation attached to one call site.
type sitePayload struct {
	site callgraph.Site
	// av is the single addition value (DeltaPath). In per-edge mode
	// (PCCE), perTarget holds the dispatch switch instead.
	av        uint64
	perTarget map[callgraph.NodeID]uint64
	// push lists dispatch targets whose edge starts a new piece
	// (recursive or pruned edges), with the piece kind.
	push map[callgraph.NodeID]encoding.PieceKind
	// expectedSID is saved before the call when call path tracking is on.
	expectedSID int32
}

// nodePayload is the instrumentation attached to one method entry/exit.
type nodePayload struct {
	node   callgraph.NodeID
	sid    int32
	anchor bool
}

// Plan is a fully resolved instrumentation plan for one program.
type Plan struct {
	Build *cha.Result
	Spec  *encoding.Spec
	CPT   *cpt.Plan // nil disables call path tracking

	sites   map[minivm.SiteRef]*sitePayload
	entries map[minivm.MethodRef]*nodePayload
	entry   callgraph.NodeID
}

// NewPlan resolves spec (and cptPlan, which may be nil) against the program
// entities recorded in build. The spec must have been computed over
// build.Graph.
func NewPlan(build *cha.Result, spec *encoding.Spec, cptPlan *cpt.Plan) (*Plan, error) {
	if spec.Graph != build.Graph {
		return nil, fmt.Errorf("instrument: spec was computed over a different graph")
	}
	entry, ok := build.Graph.Entry()
	if !ok {
		return nil, fmt.Errorf("instrument: graph has no entry")
	}
	p := &Plan{
		Build:   build,
		Spec:    spec,
		CPT:     cptPlan,
		sites:   make(map[minivm.SiteRef]*sitePayload),
		entries: make(map[minivm.MethodRef]*nodePayload),
		entry:   entry,
	}
	g := build.Graph
	for _, s := range g.Sites() {
		pay := &sitePayload{site: s, av: spec.SiteAV[s]}
		if spec.PerEdge {
			pay.perTarget = make(map[callgraph.NodeID]uint64)
		}
		for _, e := range g.SiteTargets(s) {
			if kind, pushed := spec.Push[e]; pushed {
				if pay.push == nil {
					pay.push = make(map[callgraph.NodeID]encoding.PieceKind)
				}
				pay.push[e.Callee] = kind
			} else if spec.PerEdge {
				pay.perTarget[e.Callee] = spec.EdgeAV[e]
			}
		}
		if cptPlan != nil {
			pay.expectedSID = cptPlan.Expected[s]
		}
		ref := build.RefOf[s.Caller]
		p.sites[minivm.SiteRef{In: ref, Site: s.Label}] = pay
	}
	for ref, node := range build.NodeOf {
		pay := &nodePayload{node: node, anchor: spec.Anchors[node]}
		if cptPlan != nil {
			pay.sid = cptPlan.SID[node]
		}
		p.entries[ref] = pay
	}
	return p, nil
}

// InstrumentedMethods returns the set of methods that carry instrumentation,
// for VM.SetInstrumented: exactly the nodes of the analysed call graph.
func (p *Plan) InstrumentedMethods() map[minivm.MethodRef]bool {
	out := make(map[minivm.MethodRef]bool, len(p.entries))
	for ref := range p.entries {
		out[ref] = true
	}
	return out
}

// Entry returns the graph entry node.
func (p *Plan) Entry() callgraph.NodeID { return p.entry }

// NumInstrumentedSites reports how many call sites carry payloads
// (Table 1's CS column).
func (p *Plan) NumInstrumentedSites() int { return len(p.sites) }

// ActiveSites returns the call sites that actually need instrumentation:
// with call path tracking every site saves an expectation, but without it a
// site whose addition value is zero and whose edges never push is
// "encoding free" (Section 8) — the rewriter can skip it entirely. Pass the
// result to VM.SetInstrumentedSites.
func (p *Plan) ActiveSites() map[minivm.SiteRef]bool {
	out := make(map[minivm.SiteRef]bool, len(p.sites))
	for ref, pay := range p.sites {
		if p.CPT != nil || pay.av != 0 || len(pay.push) > 0 || pay.perTarget != nil {
			out[ref] = true
		}
	}
	return out
}

// NumFreeSites reports how many sites ActiveSites excludes.
func (p *Plan) NumFreeSites() int { return len(p.sites) - len(p.ActiveSites()) }
