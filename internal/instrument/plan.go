// Package instrument binds the graph-level output of an encoding analysis
// (an encoding.Spec plus, optionally, a cpt.Plan) to a concrete minivm
// program, playing the role the Javassist-based Java agent plays in the
// paper's implementation (Section 5): it decides, per call site and per
// method entry, exactly which constant-time operations run, and provides
// the runtime Encoder that executes them as the program runs.
package instrument

import (
	"cmp"
	"fmt"
	"slices"

	"deltapath/internal/callgraph"
	"deltapath/internal/cha"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
	"deltapath/internal/minivm"
)

// sitePayload is the instrumentation attached to one call site.
type sitePayload struct {
	site callgraph.Site
	// av is the single addition value (DeltaPath). In per-edge mode
	// (PCCE), perTarget holds the dispatch switch instead.
	av        uint64
	perTarget map[callgraph.NodeID]uint64
	// push lists dispatch targets whose edge starts a new piece
	// (recursive or pruned edges), with the piece kind.
	push map[callgraph.NodeID]encoding.PieceKind
	// expectedSID is saved before the call when call path tracking is on.
	expectedSID int32
}

// nodePayload is the instrumentation attached to one method entry/exit.
type nodePayload struct {
	node   callgraph.NodeID
	sid    int32
	anchor bool
}

// fastSite is the dense-indexed compilation of one sitePayload: the runtime
// payload the encoder hot path reads by slice index instead of map lookup.
// The common monomorphic case (no pushes, no per-target values) is just the
// single av — one unconditional add, no target resolution at all.
type fastSite struct {
	// av is the site's single addition value.
	av          uint64
	site        callgraph.Site
	expectedSID int32
	// perEdge marks per-edge mode (PCCE): known targets read their
	// override from targets (0 when absent, like the legacy map miss).
	perEdge bool
	// hasPush marks a site with at least one push target.
	hasPush bool
	// targets holds the per-target overrides (push edges and per-edge
	// AVs), ascending by node for a short early-exit scan. Empty for
	// monomorphic sites.
	targets []fastTarget
}

// fastTarget is one dispatch-target override of a polymorphic site.
type fastTarget struct {
	node callgraph.NodeID
	av   uint64
	kind encoding.PieceKind
	push bool
}

// lookup returns the override for node, or nil. Target lists are short
// (a handful of dispatch candidates), so a bounded scan beats hashing.
func (f *fastSite) lookup(node callgraph.NodeID) *fastTarget {
	for i := range f.targets {
		if f.targets[i].node == node {
			return &f.targets[i]
		}
		if f.targets[i].node > node {
			break
		}
	}
	return nil
}

// fastNode is the dense-indexed entry/exit payload of the method whose
// graph node id is the slice index.
type fastNode struct {
	sid    int32
	anchor bool
}

// Plan is a fully resolved instrumentation plan for one program.
type Plan struct {
	Build *cha.Result
	Spec  *encoding.Spec
	CPT   *cpt.Plan // nil disables call path tracking

	sites   map[minivm.SiteRef]*sitePayload
	entries map[minivm.MethodRef]*nodePayload
	entry   callgraph.NodeID

	// Dense runtime tables, compiled once by NewPlan from the maps above
	// (which stay the build-time source of truth and the resolver the VM
	// consults once per loaded method): fastSites is indexed by the dense
	// site id siteID assigns, fastNodes by callgraph.NodeID.
	siteID    map[minivm.SiteRef]int32
	fastSites []fastSite
	fastNodes []fastNode

	// Cached query results (previously rebuilt on every call): the
	// instrumented-method and active-site sets are fixed at plan build, so
	// compute them once. Callers must treat the returned maps as
	// read-only — the VM and the stack walker only ever read them.
	instrumented map[minivm.MethodRef]bool
	active       map[minivm.SiteRef]bool
	freeSites    int
}

// NewPlan resolves spec (and cptPlan, which may be nil) against the program
// entities recorded in build. The spec must have been computed over
// build.Graph.
func NewPlan(build *cha.Result, spec *encoding.Spec, cptPlan *cpt.Plan) (*Plan, error) {
	return newPlan(build, spec, cptPlan, nil)
}

// NewPlanFrom builds the plan of an extended analysis (cha.Extend +
// core.Extend output) with dense ids stable across the epoch boundary:
// every call site prev modelled keeps its site id, and new sites append
// after. Method ids are graph node ids, stable by the prefix property.
// Stability is what makes a live plan swap safe for an encoder mid-flight —
// a dense id resolved against the old plan indexes the same entity in the
// new one.
func NewPlanFrom(build *cha.Result, spec *encoding.Spec, cptPlan *cpt.Plan, prev *Plan) (*Plan, error) {
	if prev == nil {
		return nil, fmt.Errorf("instrument: NewPlanFrom needs a previous plan")
	}
	return newPlan(build, spec, cptPlan, prev)
}

func newPlan(build *cha.Result, spec *encoding.Spec, cptPlan *cpt.Plan, prev *Plan) (*Plan, error) {
	if spec.Graph != build.Graph {
		return nil, fmt.Errorf("instrument: spec was computed over a different graph")
	}
	entry, ok := build.Graph.Entry()
	if !ok {
		return nil, fmt.Errorf("instrument: graph has no entry")
	}
	p := &Plan{
		Build:   build,
		Spec:    spec,
		CPT:     cptPlan,
		sites:   make(map[minivm.SiteRef]*sitePayload),
		entries: make(map[minivm.MethodRef]*nodePayload),
		entry:   entry,
		siteID:  make(map[minivm.SiteRef]int32),
	}
	g := build.Graph
	// Dense site ids follow g.Sites() order (deterministic: caller, label).
	// Under an extension, the previous plan's sites come first, in their old
	// id order: an old caller's site can materialise its first edge only
	// after an absorption (its targets were all dynamic before), and letting
	// it sort among the old sites would shift every later id.
	order := g.Sites()
	if prev != nil {
		ordered := make([]callgraph.Site, 0, len(order))
		old := make(map[callgraph.Site]bool, len(prev.fastSites))
		for i := range prev.fastSites {
			s := prev.fastSites[i].site
			if len(g.SiteTargets(s)) == 0 {
				return nil, fmt.Errorf("instrument: site %v vanished from the extended graph", s)
			}
			old[s] = true
			ordered = append(ordered, s)
		}
		for _, s := range order {
			if !old[s] {
				ordered = append(ordered, s)
			}
		}
		order = ordered
	}
	// compiling each payload into its flat fastSites slot as we go.
	for _, s := range order {
		pay := &sitePayload{site: s, av: spec.SiteAV[s]}
		if spec.PerEdge {
			pay.perTarget = make(map[callgraph.NodeID]uint64)
		}
		fast := fastSite{av: pay.av, site: s, perEdge: spec.PerEdge}
		for _, e := range g.SiteTargets(s) {
			if kind, pushed := spec.Push[e]; pushed {
				if pay.push == nil {
					pay.push = make(map[callgraph.NodeID]encoding.PieceKind)
				}
				pay.push[e.Callee] = kind
				fast.hasPush = true
				fast.targets = append(fast.targets, fastTarget{node: e.Callee, kind: kind, push: true})
			} else if spec.PerEdge {
				pay.perTarget[e.Callee] = spec.EdgeAV[e]
				fast.targets = append(fast.targets, fastTarget{node: e.Callee, av: spec.EdgeAV[e]})
			}
		}
		slices.SortFunc(fast.targets, func(a, b fastTarget) int { return cmp.Compare(a.node, b.node) })
		if cptPlan != nil {
			pay.expectedSID = cptPlan.Expected[s]
			fast.expectedSID = pay.expectedSID
		}
		ref := minivm.SiteRef{In: build.RefOf[s.Caller], Site: s.Label}
		p.sites[ref] = pay
		p.siteID[ref] = int32(len(p.fastSites))
		p.fastSites = append(p.fastSites, fast)
	}
	// Dense method ids are the graph node ids themselves (already 0..N-1).
	p.fastNodes = make([]fastNode, g.NumNodes())
	for ref, node := range build.NodeOf {
		pay := &nodePayload{node: node, anchor: spec.Anchors[node]}
		if cptPlan != nil {
			pay.sid = cptPlan.SID[node]
		}
		p.entries[ref] = pay
		p.fastNodes[node] = fastNode{sid: pay.sid, anchor: pay.anchor}
	}
	// Cache the fixed query results the accessors used to rebuild per call.
	p.instrumented = make(map[minivm.MethodRef]bool, len(p.entries))
	for ref := range p.entries {
		p.instrumented[ref] = true
	}
	p.active = make(map[minivm.SiteRef]bool, len(p.sites))
	for ref, pay := range p.sites {
		if p.CPT != nil || pay.av != 0 || len(pay.push) > 0 || pay.perTarget != nil {
			p.active[ref] = true
		}
	}
	p.freeSites = len(p.sites) - len(p.active)
	return p, nil
}

// SiteID returns the dense id of a call site, or -1 when the static
// analysis never modelled it. The VM resolves each site once per loaded
// method; the encoder hot path then indexes fastSites directly.
func (p *Plan) SiteID(s minivm.SiteRef) int32 {
	if id, ok := p.siteID[s]; ok {
		return id
	}
	return -1
}

// MethodID returns the dense id of a method — its call-graph node id — or
// -1 when the method is outside the analysed graph (dynamic classes).
func (p *Plan) MethodID(m minivm.MethodRef) int32 {
	if n, ok := p.Build.NodeOf[m]; ok {
		return int32(n)
	}
	return -1
}

// InstrumentedMethods returns the set of methods that carry instrumentation,
// for VM.SetInstrumented: exactly the nodes of the analysed call graph.
// The set is fixed at plan build and cached — treat it as read-only.
func (p *Plan) InstrumentedMethods() map[minivm.MethodRef]bool { return p.instrumented }

// Entry returns the graph entry node.
func (p *Plan) Entry() callgraph.NodeID { return p.entry }

// NumInstrumentedSites reports how many call sites carry payloads
// (Table 1's CS column).
func (p *Plan) NumInstrumentedSites() int { return len(p.sites) }

// ActiveSites returns the call sites that actually need instrumentation:
// with call path tracking every site saves an expectation, but without it a
// site whose addition value is zero and whose edges never push is
// "encoding free" (Section 8) — the rewriter can skip it entirely. Pass the
// result to VM.SetInstrumentedSites.
// The set is fixed at plan build and cached — treat it as read-only.
func (p *Plan) ActiveSites() map[minivm.SiteRef]bool { return p.active }

// NumFreeSites reports how many sites ActiveSites excludes (cached).
func (p *Plan) NumFreeSites() int { return p.freeSites }
