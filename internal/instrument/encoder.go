package instrument

import (
	"deltapath/internal/callgraph"
	"deltapath/internal/encoding"
	"deltapath/internal/minivm"
	"deltapath/internal/obs"
	"deltapath/internal/stackwalk"
)

// Encoder is the runtime component: it implements minivm.Probes and
// maintains the per-thread encoding state as the program executes. One
// Encoder serves one VM (minivm is single-threaded per VM; create one
// Encoder per VM for concurrent simulations).
//
// Per event it performs only the constant-time work the paper's
// instrumentation performs:
//
//	call site:    (CPT: save expected SID) then either ID += AV or, for a
//	              recursive/pruned edge, push-and-reset;
//	method entry: (CPT: compare SIDs, push-and-reset on hazard;
//	              bookkeeping of the last instrumented frame) and, for an
//	              anchor node, push-and-reset;
//	method exit:  pop whatever the entry pushed;
//	return:       undo what the call site did.
type Encoder struct {
	plan *Plan
	st   *encoding.State

	// Call path tracking state (Section 4.1). expectedValid/expectedSID
	// is the saved expectation; lastNode/lastID track the innermost live
	// instrumented frame and the encoding ID of the context ending
	// there, which the hazard response pushes for precise decoding.
	cptOn         bool
	expectedValid bool
	expectedSID   int32
	expectedSite  callgraph.Site
	lastNode      callgraph.NodeID
	lastID        uint64

	// pendingRecTarget is the callee of a recursive/pruned edge whose
	// BeforeCall just pushed: its entry skips the anchor push, since the
	// pushed piece already starts there (an anchor push would only add
	// an empty piece).
	pendingRecTarget callgraph.NodeID

	// Hazards counts hazardous-UCP pushes (Table 2's UCP columns).
	Hazards uint64

	// MaxID tracks the largest encoding ID observed (Table 2's max. ID).
	MaxID uint64

	// MaxStackDepth tracks the deepest piece stack observed.
	MaxStackDepth int

	// Health holds the graceful-degradation counters (see recover.go).
	Health Health

	// obs holds the observability hooks (see observe.go). The zero value
	// is the default no-op sink; obsReg remembers the registry so lazily
	// built collaborators (the stack walker) can resolve their own hooks.
	obs    encoderObs
	obsReg *obs.Registry

	// suspect is set when the encoder itself observes an impossible event
	// sequence (a pop with no matching push): the state can no longer be
	// trusted and the next VerifyAndResync repairs it unconditionally.
	suspect bool

	// dec decodes the live state for the invariant checker; lazily built
	// (a compiled flat-table decoder), or shared across encoders of one
	// spec via SetDecoder.
	dec encoding.ContextDecoder
	// walker captures ground-truth stacks for the checker and for resync;
	// built on first use (its filter is the instrumented-method set).
	// nodeBuf/directBuf are its reused capture buffers.
	walker    *stackwalk.Walker
	nodeBuf   []callgraph.NodeID
	directBuf []bool
}

// Token bits returned by BeforeCall/Enter and consumed by AfterCall/Exit.
// Bits 4–7 are never set: wrappers (internal/chaos) may use them to thread
// their own state through the VM.
const (
	tokAdded uint8 = 1 << iota
	tokPushedEdge
	tokPushedUCP
	tokPushedAnchor
)

// NewEncoder builds the runtime encoder for a plan.
func NewEncoder(plan *Plan) *Encoder {
	e := &Encoder{
		plan:  plan,
		st:    encoding.NewState(plan.entry),
		cptOn: plan.CPT != nil,
	}
	e.seedEntry()
	return e
}

// seedEntry primes the CPT state for program start: the runtime (the JVM)
// is about to invoke the entry method, so the expectation slot holds the
// entry's own SID and the last-frame bookkeeping points at the entry.
func (e *Encoder) seedEntry() {
	e.lastNode = e.plan.entry
	e.lastID = 0
	e.pendingRecTarget = callgraph.InvalidNode
	if e.cptOn {
		e.expectedValid = true
		e.expectedSID = e.plan.CPT.SID[e.plan.entry]
		e.expectedSite = callgraph.Site{Caller: e.plan.entry}
	}
}

// State exposes the live encoding state (snapshot it before storing).
func (e *Encoder) State() *encoding.State { return e.st }

// Reset prepares the encoder for a fresh run of the same program.
func (e *Encoder) Reset() {
	e.st.Reset(e.plan.entry)
	e.expectedValid = false
	e.Hazards = 0
	e.MaxID = 0
	e.MaxStackDepth = 0
	e.Health = Health{}
	e.suspect = false
	e.seedEntry()
}

// BeforeCall implements minivm.Probes: the ref-keyed spelling of
// FastBeforeCall, for probe wrappers (internal/chaos) and VMs that have not
// resolved dense ids. The plan's maps stay the source of truth for the
// ref→id translation; all encoding logic lives in the Fast path.
func (e *Encoder) BeforeCall(site minivm.SiteRef, target minivm.MethodRef) uint8 {
	return e.FastBeforeCall(e.plan.SiteID(site), e.plan.MethodID(target))
}

// FastBeforeCall implements minivm.FastProbes: one dense slice index
// instead of two map lookups. site < 0 marks a call site the static
// analysis never modelled (its only targets are dynamic classes) — no
// payload was inserted there. target < 0 marks a dynamically loaded callee.
func (e *Encoder) FastBeforeCall(site, target int32) uint8 {
	if site < 0 {
		return 0
	}
	pay := &e.plan.fastSites[site]
	if e.cptOn {
		e.expectedValid = true
		e.expectedSID = pay.expectedSID
		e.expectedSite = pay.site
		e.obs.sidSaves.Inc()
	}
	av := pay.av
	if (pay.hasPush || pay.perEdge) && target >= 0 {
		// Polymorphic site: resolve the dispatched target's override.
		if t := pay.lookup(callgraph.NodeID(target)); t != nil {
			if t.push {
				e.st.PushCallEdge(t.kind, pay.site, t.node)
				e.pendingRecTarget = t.node
				e.noteDepth()
				e.obs.edgePushes.Inc()
				if e.obs.tracer != nil {
					e.obs.tracer.Record(obs.EvEdgePush, uint64(pay.site.Label), e.st.ID)
				}
				return tokPushedEdge
			}
			av = t.av
		} else if pay.perEdge {
			av = 0 // per-edge mode: a target without an edge AV adds nothing
		}
	}
	// Monomorphic fast path and dynamically loaded targets land here: one
	// unconditional add of the site's value; call path tracking repairs
	// the encoding at the next static entry if the target was dynamic.
	e.st.Add(av)
	if e.st.ID > e.MaxID {
		e.MaxID = e.st.ID
	}
	e.obs.additions.Inc()
	return tokAdded
}

// AfterCall implements minivm.Probes (see BeforeCall).
func (e *Encoder) AfterCall(site minivm.SiteRef, target minivm.MethodRef, token uint8) {
	if token == 0 {
		return
	}
	e.FastAfterCall(e.plan.SiteID(site), e.plan.MethodID(target), token)
}

// FastAfterCall implements minivm.FastProbes.
func (e *Encoder) FastAfterCall(site, target int32, token uint8) {
	if token == 0 || site < 0 {
		return
	}
	pay := &e.plan.fastSites[site]
	if token&tokPushedEdge != 0 {
		if _, ok := e.st.TryPop(); !ok {
			e.noteUnderflow()
		}
	} else if token&tokAdded != 0 {
		av := pay.av
		if pay.perEdge && target >= 0 {
			if t := pay.lookup(callgraph.NodeID(target)); t != nil && !t.push {
				av = t.av
			} else {
				av = 0
			}
		}
		e.st.Sub(av)
	}
	// Control is back in the caller: it is now the innermost live
	// instrumented frame, and the current ID is its context's encoding.
	if e.cptOn {
		e.lastNode = pay.site.Caller
		e.lastID = e.st.ID
	}
}

// Enter implements minivm.Probes (see BeforeCall).
func (e *Encoder) Enter(m minivm.MethodRef) uint8 {
	return e.FastEnter(e.plan.MethodID(m))
}

// FastEnter implements minivm.FastProbes. m is the method's graph node id;
// m < 0 marks a method outside the analysed graph.
func (e *Encoder) FastEnter(m int32) uint8 {
	if m < 0 {
		return 0
	}
	node := callgraph.NodeID(m)
	pay := &e.plan.fastNodes[m]
	pendingRec := e.pendingRecTarget
	e.pendingRecTarget = callgraph.InvalidNode
	var tok uint8
	if e.cptOn {
		// The entry check CONSUMES the expectation: a matching entry
		// uses it up, so a later entry with an empty slot means control
		// arrived without a preceding instrumented call — necessarily
		// through unanalysed frames. Without consumption, a stale
		// expectation whose SID happens to match would silently corrupt
		// the encoding (a false-benign UCP).
		valid := e.expectedValid
		e.expectedValid = false
		e.obs.sidChecks.Inc()
		if !valid || e.expectedSID != pay.sid {
			// Hazardous unexpected call path: control reached this
			// statically loaded function through frames the static
			// analysis never saw (Section 4.1). Push the suspended
			// piece — it ends at the last live instrumented frame —
			// and restart the encoding here.
			e.st.PushUCP(e.expectedSite, e.lastID, e.lastNode, node)
			e.Hazards++
			e.noteDepth()
			e.obs.ucpPushes.Inc()
			if e.obs.tracer != nil {
				e.obs.tracer.Record(obs.EvUCPPush, uint64(node), e.st.ID)
			}
			tok |= tokPushedUCP
		}
	}
	if pay.anchor && pendingRec != node {
		e.st.PushAnchor(node)
		e.noteDepth()
		e.obs.anchorPushes.Inc()
		if e.obs.tracer != nil {
			e.obs.tracer.Record(obs.EvAnchorPush, uint64(node), e.st.ID)
		}
		tok |= tokPushedAnchor
	}
	if e.cptOn {
		// This method is now the innermost live instrumented frame;
		// the (possibly just reset) ID encodes the context ending here.
		e.lastNode = node
		e.lastID = e.st.ID
	}
	return tok
}

// Exit implements minivm.Probes (see BeforeCall).
func (e *Encoder) Exit(m minivm.MethodRef, token uint8) {
	e.FastExit(e.plan.MethodID(m), token)
}

// FastExit implements minivm.FastProbes.
func (e *Encoder) FastExit(m int32, token uint8) {
	var popped *encoding.Element
	if token&tokPushedAnchor != 0 {
		if el, ok := e.st.TryPop(); ok {
			popped = &el
			e.obs.anchorPops.Inc()
			if e.obs.tracer != nil {
				e.obs.tracer.Record(obs.EvAnchorPop, uint64(el.OuterEnd), e.st.ID)
			}
		} else {
			e.noteUnderflow()
		}
	}
	if token&tokPushedUCP != 0 {
		if el, ok := e.st.TryPop(); ok {
			popped = &el
		} else {
			e.noteUnderflow()
		}
	}
	if e.cptOn {
		if popped != nil {
			// The pops rewound the encoding to the suspended piece: the
			// element's DecodeID is the encoding of the context ending
			// at its outer frame. (The restored st.ID may additionally
			// contain the in-flight addition of the call site whose
			// invocation led here; DecodeID excludes it.)
			e.lastNode = popped.OuterEnd
			e.lastID = popped.DecodeID
		} else if m >= 0 {
			// After this method's exit instrumentation the ID again
			// encodes a context ending at this method, whoever the
			// caller is — including an unanalysed one that will never
			// run AfterCall.
			e.lastNode = callgraph.NodeID(m)
			e.lastID = e.st.ID
		}
	}
}

// ResolveMethod implements minivm.FastProbes: the dense id FastEnter/
// FastExit expect, resolved once per loaded method by the VM.
func (e *Encoder) ResolveMethod(m minivm.MethodRef) int32 { return e.plan.MethodID(m) }

// ResolveSite implements minivm.FastProbes.
func (e *Encoder) ResolveSite(s minivm.SiteRef) int32 { return e.plan.SiteID(s) }

// noteUnderflow records a pop with no matching push: the piece stack has
// been corrupted (dropped events, injected truncation). Before graceful
// degradation this panicked; now the state is flagged suspect and the next
// VerifyAndResync rebuilds it from a stack walk.
func (e *Encoder) noteUnderflow() {
	e.suspect = true
	e.Health.CorruptionsDetected++
	e.obs.underflows.Inc()
	e.obs.corruptions.Inc()
}

func (e *Encoder) noteDepth() {
	if d := e.st.Depth(); d > e.MaxStackDepth {
		e.MaxStackDepth = d
	}
	e.obs.pieceDepth.Observe(uint64(e.st.Depth()))
}

// BeginTask implements minivm.TaskProbes: an executor task runs on a fresh
// stack, so the per-thread encoding state resets, rooted at the task's
// entry (which the analysis made a piece-start anchor). A task rooted at an
// unanalysed method (a dynamically loaded class) resets to the program
// entry with an empty expectation, so its first analysed frame starts a
// piece behind an explicit gap.
func (e *Encoder) BeginTask(entry minivm.MethodRef) {
	node, known := e.plan.Build.NodeOf[entry]
	if !known {
		node = e.plan.entry
	}
	e.st.Reset(node)
	e.pendingRecTarget = callgraph.InvalidNode
	e.lastNode = node
	e.lastID = 0
	if e.cptOn {
		e.expectedValid = known
		if known {
			e.expectedSID = e.plan.CPT.SID[node]
			e.expectedSite = callgraph.Site{Caller: node}
		}
	}
}

var _ minivm.Probes = (*Encoder)(nil)
var _ minivm.TaskProbes = (*Encoder)(nil)
var _ minivm.FastProbes = (*Encoder)(nil)
