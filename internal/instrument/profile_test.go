package instrument

import (
	"strings"
	"testing"

	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
	"deltapath/internal/lang"
	"deltapath/internal/minivm"
)

const profileSrc = `
entry A.main
class A {
  method main {
    loop 50 { call A.hot }
    call A.cold
    emit top
  }
  method hot  { call A.leaf }
  method cold { call A.leaf }
  method leaf { emit leaf }
}
`

func TestProfileCountsEdges(t *testing.T) {
	prog := lang.MustParse(profileSrc)
	build, err := cha.Build(prog, cha.Options{})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := Profile(prog, build, 0)
	if err != nil {
		t.Fatal(err)
	}
	hot := build.NodeOf[minivm.MethodRef{Class: "A", Method: "hot"}]
	cold := build.NodeOf[minivm.MethodRef{Class: "A", Method: "cold"}]
	leaf := build.NodeOf[minivm.MethodRef{Class: "A", Method: "leaf"}]
	var hotN, coldN uint64
	for e, c := range counts {
		if e.Callee == leaf && e.Caller == hot {
			hotN = c
		}
		if e.Callee == leaf && e.Caller == cold {
			coldN = c
		}
	}
	if hotN != 50 || coldN != 1 {
		t.Fatalf("edge counts hot=%d cold=%d, want 50/1", hotN, coldN)
	}
}

// TestProfileGuidedFreeSites: with the profile, the hot edge gets addition
// value 0, making its site encoding-free; without it, declaration order
// decides. Correctness must hold either way.
func TestProfileGuidedFreeSites(t *testing.T) {
	prog := lang.MustParse(profileSrc)
	build, err := cha.Build(prog, cha.Options{})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := Profile(prog, build, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Encode(build.Graph, core.Options{EdgeProfile: counts})
	if err != nil {
		t.Fatal(err)
	}
	// The hot edge A.hot -> A.leaf must carry addition value 0 ...
	hot := build.NodeOf[minivm.MethodRef{Class: "A", Method: "hot"}]
	leaf := build.NodeOf[minivm.MethodRef{Class: "A", Method: "leaf"}]
	var hotAV, coldAV uint64
	cold := build.NodeOf[minivm.MethodRef{Class: "A", Method: "cold"}]
	for _, e := range build.Graph.In(leaf) {
		switch e.Caller {
		case hot:
			hotAV = res.Spec.AV(e)
		case cold:
			coldAV = res.Spec.AV(e)
		}
	}
	if hotAV != 0 || coldAV == 0 {
		t.Fatalf("profile-guided AVs: hot=%d cold=%d, want hot free", hotAV, coldAV)
	}

	// ... and its site drops out of the active set (no CPT).
	plan, err := NewPlan(build, res.Spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumFreeSites() == 0 {
		t.Fatal("no encoding-free sites despite zero addition values")
	}

	// Run with free sites uninstrumented: decoding stays exact.
	enc := NewEncoder(plan)
	vm, err := minivm.NewVM(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	vm.SetProbes(enc)
	vm.SetInstrumented(plan.InstrumentedMethods())
	vm.SetInstrumentedSites(plan.ActiveSites())
	dec := encoding.NewDecoder(res.Spec)
	checked := 0
	vm.OnEmit = func(v *minivm.VM, m minivm.MethodRef, _ string) {
		node := build.NodeOf[m]
		names, err := dec.DecodeNames(enc.State().Snapshot(), node)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		var truth []string
		for _, f := range v.Stack() {
			truth = append(truth, f.String())
		}
		if strings.Join(names, ">") != strings.Join(truth, ">") {
			t.Fatalf("free-site decode mismatch: %v vs %v", names, truth)
		}
		checked++
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no emits checked")
	}
}

// TestActiveSitesWithCPT: call path tracking needs the expectation save at
// every site, so nothing is free.
func TestActiveSitesWithCPT(t *testing.T) {
	prog := lang.MustParse(profileSrc)
	build, _ := cha.Build(prog, cha.Options{})
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	planCPT, err := NewPlan(build, res.Spec, cpt.Compute(build.Graph))
	if err != nil {
		t.Fatal(err)
	}
	if planCPT.NumFreeSites() != 0 {
		t.Fatalf("CPT plan reports %d free sites, want 0", planCPT.NumFreeSites())
	}
}
