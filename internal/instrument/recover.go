package instrument

import (
	"fmt"

	"deltapath/internal/callgraph"
	"deltapath/internal/encoding"
	"deltapath/internal/minivm"
	"deltapath/internal/obs"
	"deltapath/internal/stackwalk"
)

// This file is the recovery half of graceful degradation: an invariant
// checker that cross-checks the incrementally maintained encoding against
// the VM's ground-truth stack, and a resync path that rebuilds the state
// from a stack walk when the checker (or the encoder itself) detects
// corruption. The checker costs a decode per call — O(depth) — so it runs
// in chaos and test builds, not on the hot path; resync runs only when
// something is already wrong, after which every subsequent query is exact
// again.

// Health counts graceful-degradation events. The counters are cumulative
// per encoder (reset by Encoder.Reset) and are the operational signal a
// deployment watches: a nonzero CorruptionsDetected with an equal Resyncs
// means faults occurred and were healed; diverging counters mean faults
// are arriving faster than emit points can repair them.
type Health struct {
	// Resyncs counts stack-walk resynchronizations performed.
	Resyncs uint64
	// CorruptionsDetected counts detections: invariant-checker mismatches,
	// typed decode errors, and pops with no matching push.
	CorruptionsDetected uint64
	// DroppedEvents counts probe events a fault-injection wrapper
	// suppressed (written by internal/chaos).
	DroppedEvents uint64
	// PartialDecodes counts best-effort decodes that salvaged only a
	// suffix of a corrupt context.
	PartialDecodes uint64
}

// SetDecoder shares a decoder (built over this plan's spec) with the
// invariant checker, so many encoders reuse one set of decode tables.
// Either decoder works; without it the checker lazily compiles its own.
func (e *Encoder) SetDecoder(d encoding.ContextDecoder) { e.dec = d }

func (e *Encoder) decoder() encoding.ContextDecoder {
	if e.dec == nil {
		e.dec = encoding.Compile(e.plan.Spec)
	}
	return e.dec
}

// walkNodes captures the VM's ground-truth stack, filtered to instrumented
// methods and mapped to graph nodes, plus the per-frame call-adjacency
// flags — the reference the checker compares against and the path the
// resync replays. The buffers are reused across walks (one encoder serves
// one VM, so walks never overlap).
func (e *Encoder) walkNodes(vm *minivm.VM) ([]callgraph.NodeID, []bool) {
	if e.walker == nil {
		e.walker = &stackwalk.Walker{Filter: e.plan.InstrumentedMethods()}
		e.walker.Observe(e.obsReg)
	}
	e.nodeBuf, e.directBuf = e.walker.CaptureNodesDirect(vm, e.plan.Build.NodeOf, e.nodeBuf[:0], e.directBuf[:0])
	return e.nodeBuf, e.directBuf
}

// VerifyState runs the shadow-stack invariant check: decode the live state
// and compare it, gaps removed, with the VM's stack filtered to
// instrumented methods. It must be called at a quiescent point (an emit
// inside an instrumented method), where the encoding represents the
// context ending at the innermost instrumented frame. A nil return means
// the state is consistent; any error means corruption.
func (e *Encoder) VerifyState(vm *minivm.VM) error {
	path, _ := e.walkNodes(vm)
	return e.verifyAgainst(path)
}

func (e *Encoder) verifyAgainst(truth []callgraph.NodeID) error {
	if len(truth) == 0 {
		return nil // inside unanalysed code: nothing to cross-check
	}
	frames, err := e.decoder().Decode(e.st, truth[len(truth)-1])
	if err != nil {
		return err
	}
	i := 0
	for _, f := range frames {
		if f.Gap {
			continue
		}
		if i >= len(truth) || f.Node != truth[i] {
			return fmt.Errorf("shadow-stack mismatch at frame %d: decoded %s, stack has %s",
				i, e.plan.Spec.Graph.Name(f.Node), e.nameAt(truth, i))
		}
		i++
	}
	if i != len(truth) {
		return fmt.Errorf("shadow-stack mismatch: decoded %d frames, stack has %d", i, len(truth))
	}
	return nil
}

func (e *Encoder) nameAt(truth []callgraph.NodeID, i int) string {
	if i >= len(truth) {
		return "<nothing>"
	}
	return e.plan.Spec.Graph.Name(truth[i])
}

// Resync discards the (presumed corrupt) encoding state and re-derives a
// valid one by replaying the walked stack through the spec. O(depth), like
// an anchor push amortized over the events since the fault; afterwards
// incremental tracking resumes and every subsequent query is exact.
func (e *Encoder) Resync(vm *minivm.VM) { e.resyncTo(e.walkNodes(vm)) }

func (e *Encoder) resyncTo(path []callgraph.NodeID, direct []bool) {
	st := stackwalk.ReencodeDirect(e.plan.Spec, e.plan.entry, path, direct,
		e.obsReg.Counter(obs.MetricStackwalkReencodes))
	// Replace in place so references handed out by State() stay live.
	*e.st = *st
	e.pendingRecTarget = callgraph.InvalidNode
	// Conservatively drop any saved call-path expectation: if control next
	// reaches an instrumented entry without an instrumented call, that is
	// treated as a hazard (a gap), never as a false-benign match.
	e.expectedValid = false
	last := e.plan.entry
	if len(path) > 0 {
		last = path[len(path)-1]
	}
	e.lastNode, e.lastID = last, e.st.ID
	e.suspect = false
	e.noteDepth()
	e.Health.Resyncs++
	e.obs.resyncs.Inc()
	if e.obs.tracer != nil {
		e.obs.tracer.Record(obs.EvResync, uint64(e.lastNode), e.st.ID)
	}
}

// VerifyAndResync is the self-healing protocol, intended at emit points of
// chaos/test builds: run the invariant checker and, on any detected
// corruption — a checker mismatch, a typed decode error, or a pop
// underflow the encoder already flagged — fall back to a stack walk and
// rebuild the state. Reports whether a resync happened; afterwards the
// state is guaranteed consistent with the VM's stack.
func (e *Encoder) VerifyAndResync(vm *minivm.VM) bool {
	path, direct := e.walkNodes(vm)
	corrupt := e.suspect
	if !corrupt {
		if err := e.verifyAgainst(path); err != nil {
			e.Health.CorruptionsDetected++
			e.obs.corruptions.Inc()
			corrupt = true
		}
	}
	if !corrupt {
		return false
	}
	// Salvage what the corrupt state still encodes before discarding it —
	// the best-effort output a log pipeline would emit for this window.
	if len(path) > 0 {
		if _, complete := e.decoder().DecodeBestEffort(e.st, path[len(path)-1]); !complete {
			e.Health.PartialDecodes++
			e.obs.partials.Inc()
		}
	}
	e.resyncTo(path, direct)
	return true
}
