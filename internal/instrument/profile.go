package instrument

import (
	"deltapath/internal/callgraph"
	"deltapath/internal/cha"
	"deltapath/internal/minivm"
)

// EdgeProfiler counts call-edge executions. Feed the result to
// core.Options.EdgeProfile so the hottest incoming edge of each node gets
// addition value 0 and its site becomes encoding-free (Section 8's
// profile-guided optimization, adopted from PCCE).
type EdgeProfiler struct {
	build  *cha.Result
	Counts map[callgraph.Edge]uint64
}

// NewEdgeProfiler builds a profiler over the analysed program in build.
func NewEdgeProfiler(build *cha.Result) *EdgeProfiler {
	return &EdgeProfiler{build: build, Counts: make(map[callgraph.Edge]uint64)}
}

// BeforeCall implements minivm.Probes.
func (p *EdgeProfiler) BeforeCall(site minivm.SiteRef, target minivm.MethodRef) uint8 {
	caller, ok := p.build.NodeOf[site.In]
	if !ok {
		return 0
	}
	callee, ok := p.build.NodeOf[target]
	if !ok {
		return 0
	}
	p.Counts[callgraph.Edge{Caller: caller, Callee: callee, Label: site.Site}]++
	return 0
}

// AfterCall implements minivm.Probes.
func (p *EdgeProfiler) AfterCall(minivm.SiteRef, minivm.MethodRef, uint8) {}

// Enter implements minivm.Probes.
func (p *EdgeProfiler) Enter(minivm.MethodRef) uint8 { return 0 }

// Exit implements minivm.Probes.
func (p *EdgeProfiler) Exit(minivm.MethodRef, uint8) {}

// Profile runs the program once under the profiler and returns the edge
// counts.
func Profile(prog *minivm.Program, build *cha.Result, seed uint64) (map[callgraph.Edge]uint64, error) {
	vm, err := minivm.NewVM(prog, seed)
	if err != nil {
		return nil, err
	}
	prof := NewEdgeProfiler(build)
	vm.SetProbes(prof)
	instr := make(map[minivm.MethodRef]bool, len(build.NodeOf))
	for ref := range build.NodeOf {
		instr[ref] = true
	}
	vm.SetInstrumented(instr)
	if err := vm.Run(); err != nil {
		return nil, err
	}
	return prof.Counts, nil
}

var _ minivm.Probes = (*EdgeProfiler)(nil)
