package instrument

import (
	"deltapath/internal/callgraph"
	"deltapath/internal/encoding"
	"deltapath/internal/minivm"
)

// DepthEncoder implements the alternative UCP-detection scheme Section 4.1
// sketches and argues against: instead of SID expectations, a per-thread
// counter tracks the number of dynamically loaded frames on the stack,
// incremented and decremented at every dynamic method's entry and exit. A
// statically loaded method detects a UCP when the counter is non-zero.
//
// The paper's two criticisms, both measurable on this implementation:
//
//  1. dynamically loaded classes must be instrumented (the VM must run with
//     SetProbeDynamic(true)), which is sometimes infeasible and always
//     costs probe overhead inside code DeltaPath leaves untouched;
//  2. there is no benign case — every entry reached across dynamic frames
//     pushes, even when the SID check would have sailed through — so piece
//     stacks grow deeper.
//
// Decoding uses the same piece machinery as the main Encoder.
type DepthEncoder struct {
	plan *Plan
	st   *encoding.State

	depth      int
	savedDepth []int

	lastNode callgraph.NodeID
	lastID   uint64

	pendingRecTarget callgraph.NodeID

	// Hazards counts UCP pushes.
	Hazards uint64
}

// NewDepthEncoder builds the depth-tracking runtime for a plan. The plan's
// CPT field is ignored — this scheme needs no SIDs.
func NewDepthEncoder(plan *Plan) *DepthEncoder {
	return &DepthEncoder{
		plan:             plan,
		st:               encoding.NewState(plan.entry),
		lastNode:         plan.entry,
		pendingRecTarget: callgraph.InvalidNode,
	}
}

// State exposes the live encoding state.
func (e *DepthEncoder) State() *encoding.State { return e.st }

// Reset prepares for a fresh run.
func (e *DepthEncoder) Reset() {
	e.st.Reset(e.plan.entry)
	e.depth = 0
	e.savedDepth = e.savedDepth[:0]
	e.lastNode = e.plan.entry
	e.lastID = 0
	e.pendingRecTarget = callgraph.InvalidNode
	e.Hazards = 0
}

// BeforeCall implements minivm.Probes (identical arithmetic to Encoder,
// minus the SID save).
func (e *DepthEncoder) BeforeCall(site minivm.SiteRef, target minivm.MethodRef) uint8 {
	pay := e.plan.sites[site]
	if pay == nil {
		return 0
	}
	if node, known := e.plan.Build.NodeOf[target]; known {
		if kind, pushed := pay.push[node]; pushed {
			e.st.PushCallEdge(kind, pay.site, node)
			e.pendingRecTarget = node
			return tokPushedEdge
		}
	}
	e.st.Add(pay.av)
	return tokAdded
}

// AfterCall implements minivm.Probes.
func (e *DepthEncoder) AfterCall(site minivm.SiteRef, _ minivm.MethodRef, token uint8) {
	if token == 0 {
		return
	}
	pay := e.plan.sites[site]
	if token&tokPushedEdge != 0 {
		e.st.Pop()
	} else {
		e.st.Sub(pay.av)
	}
	e.lastNode = pay.site.Caller
	e.lastID = e.st.ID
}

// Enter implements minivm.Probes. Dynamic methods (no payload) bump the
// depth counter; static methods detect a UCP when the counter is non-zero.
func (e *DepthEncoder) Enter(m minivm.MethodRef) uint8 {
	pay := e.plan.entries[m]
	if pay == nil {
		// Dynamically loaded (or otherwise unanalysed) method: this is
		// the instrumentation DeltaPath's call path tracking avoids.
		e.depth++
		return 0
	}
	pendingRec := e.pendingRecTarget
	e.pendingRecTarget = callgraph.InvalidNode
	var tok uint8
	if e.depth != 0 {
		// Unanalysed frames are on the stack below us: unexpected call
		// path. Save the depth, push, and restart the encoding.
		e.st.PushUCP(callgraph.Site{Caller: e.lastNode}, e.lastID, e.lastNode, pay.node)
		e.savedDepth = append(e.savedDepth, e.depth)
		e.depth = 0
		e.Hazards++
		tok |= tokPushedUCP
	}
	if pay.anchor && pendingRec != pay.node {
		e.st.PushAnchor(pay.node)
		tok |= tokPushedAnchor
	}
	e.lastNode = pay.node
	e.lastID = e.st.ID
	return tok
}

// Exit implements minivm.Probes.
func (e *DepthEncoder) Exit(m minivm.MethodRef, token uint8) {
	if e.plan.entries[m] == nil {
		e.depth--
		return
	}
	var popped *encoding.Element
	if token&tokPushedAnchor != 0 {
		el := e.st.Pop()
		popped = &el
	}
	if token&tokPushedUCP != 0 {
		el := e.st.Pop()
		popped = &el
		e.depth = e.savedDepth[len(e.savedDepth)-1]
		e.savedDepth = e.savedDepth[:len(e.savedDepth)-1]
	}
	if popped != nil {
		// DecodeID, not st.ID: the restored ID may still contain the
		// in-flight addition of the call site that led here.
		e.lastNode = popped.OuterEnd
		e.lastID = popped.DecodeID
	} else if pay := e.plan.entries[m]; pay != nil {
		e.lastNode = pay.node
		e.lastID = e.st.ID
	}
}

// BeginTask implements minivm.TaskProbes.
func (e *DepthEncoder) BeginTask(entry minivm.MethodRef) {
	node, known := e.plan.Build.NodeOf[entry]
	if !known {
		node = e.plan.entry
	}
	e.st.Reset(node)
	e.depth = 0
	e.savedDepth = e.savedDepth[:0]
	e.pendingRecTarget = callgraph.InvalidNode
	e.lastNode = node
	e.lastID = 0
}

var _ minivm.Probes = (*DepthEncoder)(nil)
var _ minivm.TaskProbes = (*DepthEncoder)(nil)
