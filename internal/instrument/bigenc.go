package instrument

import (
	"math/big"

	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/minivm"
)

// BigEncoder is the runtime half of the design Section 3.2 rejects: the
// encoding ID is an arbitrary-precision integer and every instrumented call
// performs a big.Int addition ("it is very inefficient to represent and
// operate on addition values using some class (e.g., BigInteger in Java)").
// It exists purely as a measured ablation against the anchor-based Encoder;
// it maintains no call path tracking and no decoder is provided.
type BigEncoder struct {
	sites   map[minivm.SiteRef]*bigSitePayload
	entries map[minivm.MethodRef]bool // true = anchor entry (save/reset)
	nodeOf  map[minivm.MethodRef]struct{}

	id    *big.Int
	saved []*big.Int
	// scratch avoids one allocation per Sub.
	scratch *big.Int
}

type bigSitePayload struct {
	av   *big.Int
	push map[minivm.MethodRef]bool // recursive targets
}

// NewBigEncoder binds a big-int analysis to the program entities in build.
func NewBigEncoder(build *cha.Result, res *core.BigResult) *BigEncoder {
	e := &BigEncoder{
		sites:   make(map[minivm.SiteRef]*bigSitePayload),
		entries: make(map[minivm.MethodRef]bool),
		id:      big.NewInt(0),
		scratch: big.NewInt(0),
	}
	g := build.Graph
	for _, s := range g.Sites() {
		pay := &bigSitePayload{av: res.AV[s]}
		if pay.av == nil {
			pay.av = big.NewInt(0)
		}
		for _, edge := range g.SiteTargets(s) {
			if _, pushed := res.Push[edge]; pushed {
				if pay.push == nil {
					pay.push = make(map[minivm.MethodRef]bool)
				}
				pay.push[build.RefOf[edge.Callee]] = true
			}
		}
		e.sites[minivm.SiteRef{In: build.RefOf[s.Caller], Site: s.Label}] = pay
	}
	for ref, node := range build.NodeOf {
		e.entries[ref] = res.Anchors[node]
	}
	return e
}

// Value returns the current big encoding ID.
func (e *BigEncoder) Value() *big.Int { return e.id }

// Reset clears the state.
func (e *BigEncoder) Reset() {
	e.id.SetInt64(0)
	e.saved = e.saved[:0]
}

// BeforeCall implements minivm.Probes.
func (e *BigEncoder) BeforeCall(site minivm.SiteRef, target minivm.MethodRef) uint8 {
	pay := e.sites[site]
	if pay == nil {
		return 0
	}
	if pay.push != nil && pay.push[target] {
		e.saved = append(e.saved, e.id)
		e.id = big.NewInt(0)
		return tokPushedEdge
	}
	e.id.Add(e.id, pay.av)
	return tokAdded
}

// AfterCall implements minivm.Probes.
func (e *BigEncoder) AfterCall(site minivm.SiteRef, _ minivm.MethodRef, token uint8) {
	switch {
	case token&tokPushedEdge != 0:
		e.id = e.saved[len(e.saved)-1]
		e.saved = e.saved[:len(e.saved)-1]
	case token&tokAdded != 0:
		e.id.Sub(e.id, e.sites[site].av)
	}
}

// Enter implements minivm.Probes.
func (e *BigEncoder) Enter(m minivm.MethodRef) uint8 {
	anchor, known := e.entries[m]
	if !known || !anchor {
		return 0
	}
	e.saved = append(e.saved, e.id)
	e.id = big.NewInt(0)
	return tokPushedAnchor
}

// Exit implements minivm.Probes.
func (e *BigEncoder) Exit(_ minivm.MethodRef, token uint8) {
	if token&tokPushedAnchor != 0 {
		e.id = e.saved[len(e.saved)-1]
		e.saved = e.saved[:len(e.saved)-1]
	}
}

// BeginTask implements minivm.TaskProbes.
func (e *BigEncoder) BeginTask(minivm.MethodRef) { e.Reset() }

var _ minivm.Probes = (*BigEncoder)(nil)
var _ minivm.TaskProbes = (*BigEncoder)(nil)
