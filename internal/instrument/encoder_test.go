package instrument

import (
	"strings"
	"testing"

	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
	"deltapath/internal/lang"
	"deltapath/internal/minivm"
	"deltapath/internal/pcce"
)

// harness wires a program through analysis, instrumentation, execution and
// decoding, and checks at every emit point that the decoded context (gaps
// removed) equals the ground-truth stack filtered to instrumented methods,
// and that each encoding key maps to exactly one such context.
type harness struct {
	t       *testing.T
	prog    *minivm.Program
	build   *cha.Result
	plan    *Plan
	enc     *Encoder
	dec     *encoding.Decoder
	vm      *minivm.VM
	keyCtx  map[string]string
	emits   int
	decoded [][]string
}

type harnessOpts struct {
	setting cha.Setting
	cptOn   bool
	maxID   uint64
	seed    uint64
	perEdge bool // use the PCCE algorithm instead of DeltaPath
}

func newHarness(t *testing.T, src string, o harnessOpts) *harness {
	t.Helper()
	prog := lang.MustParse(src)
	build, err := cha.Build(prog, cha.Options{Setting: o.setting})
	if err != nil {
		t.Fatal(err)
	}
	var spec *encoding.Spec
	if o.perEdge {
		res, err := pcce.Encode(build.Graph, pcce.Options{MaxID: o.maxID})
		if err != nil {
			t.Fatal(err)
		}
		spec = res.Spec
	} else {
		res, err := core.Encode(build.Graph, core.Options{MaxID: o.maxID})
		if err != nil {
			t.Fatal(err)
		}
		spec = res.Spec
	}
	var cptPlan *cpt.Plan
	if o.cptOn {
		cptPlan = cpt.Compute(build.Graph)
	}
	plan, err := NewPlan(build, spec, cptPlan)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(plan)
	vm, err := minivm.NewVM(prog, o.seed)
	if err != nil {
		t.Fatal(err)
	}
	vm.SetProbes(enc)
	vm.SetInstrumented(plan.InstrumentedMethods())
	h := &harness{
		t: t, prog: prog, build: build, plan: plan, enc: enc,
		dec: encoding.NewDecoder(spec), vm: vm,
		keyCtx: make(map[string]string),
	}
	vm.OnEmit = h.onEmit
	return h
}

func (h *harness) onEmit(vm *minivm.VM, m minivm.MethodRef, _ string) {
	h.emits++
	node, known := h.build.NodeOf[m]
	if !known {
		return // emit inside unanalysed code: encoding does not apply
	}
	st := h.enc.State().Snapshot()
	key := st.Key(node)

	// Ground truth: the VM stack filtered to instrumented methods.
	var truth []string
	for _, f := range vm.Stack() {
		if _, ok := h.build.NodeOf[f]; ok {
			truth = append(truth, f.String())
		}
	}
	truthStr := strings.Join(truth, ">")

	if prev, dup := h.keyCtx[key]; dup {
		if prev != truthStr {
			h.t.Fatalf("encoding key %q decodes ambiguously:\n  %s\n  %s", key, prev, truthStr)
		}
	} else {
		h.keyCtx[key] = truthStr
	}

	names, err := h.dec.DecodeNames(st, node)
	if err != nil {
		h.t.Fatalf("decode at %s (truth %s): %v", m, truthStr, err)
	}
	h.decoded = append(h.decoded, names)
	var got []string
	for _, n := range names {
		if n != "..." {
			got = append(got, n)
		}
	}
	if gotStr := strings.Join(got, ">"); gotStr != truthStr {
		h.t.Fatalf("decoded context mismatch at %s:\n  got  %s (full: %v)\n  want %s",
			m, gotStr, names, truthStr)
	}
}

func (h *harness) run() {
	h.t.Helper()
	if err := h.vm.Run(); err != nil {
		h.t.Fatal(err)
	}
	if h.emits == 0 {
		h.t.Fatal("program produced no emits; test is vacuous")
	}
	if d := h.enc.State().Depth(); d != 1 || h.enc.State().ID != 0 {
		h.t.Fatalf("encoder state unbalanced after run: depth %d id %d", d, h.enc.State().ID)
	}
}

const virtualProgram = `
entry Main.main
class Main {
  method main {
    loop 4 {
      call Main.work
      vcall Shape.area
    }
    emit top
  }
  method work {
    vcall Shape.area
    emit w
  }
}
class Shape { method area { emit s } }
class Circle extends Shape { method area { call Shape.area; emit c } }
class Square extends Shape { method area { emit q } }
`

func TestVirtualDispatchRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		h := newHarness(t, virtualProgram, harnessOpts{seed: seed})
		h.run()
	}
}

func TestVirtualDispatchWithCPTNoHazards(t *testing.T) {
	// Without dynamic loading or exclusion, call path tracking must stay
	// silent: every entry matches its expectation.
	h := newHarness(t, virtualProgram, harnessOpts{cptOn: true, seed: 3})
	h.run()
	if h.enc.Hazards != 0 {
		t.Fatalf("hazards = %d on a fully analysed program", h.enc.Hazards)
	}
}

func TestPCCEPerEdgeSwitchRoundTrip(t *testing.T) {
	// The PCCE baseline on the same program needs its per-target switch
	// but must be equally precise.
	h := newHarness(t, virtualProgram, harnessOpts{perEdge: true, seed: 5})
	h.run()
}

const recursiveProgram = `
entry Main.main
class Main {
  method main {
    call Main.rec
    emit top
  }
  method rec {
    emit in
    vcall Main.rec     # self-recursive virtual call
    emit out
  }
}
class Sub extends Main { method rec { emit sub } }
`

func TestRecursionRoundTrip(t *testing.T) {
	// Bound the recursion via MaxDepth: the VM errors out, which is fine —
	// we only check encodings at emits reached before that.
	prog := lang.MustParse(recursiveProgram)
	build, err := cha.Build(prog, cha.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(build, res.Spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 6; seed++ {
		enc := NewEncoder(plan)
		vm, err := minivm.NewVM(prog, seed)
		if err != nil {
			t.Fatal(err)
		}
		vm.MaxDepth = 20
		vm.SetProbes(enc)
		vm.SetInstrumented(plan.InstrumentedMethods())
		dec := encoding.NewDecoder(res.Spec)
		checked := 0
		vm.OnEmit = func(v *minivm.VM, m minivm.MethodRef, _ string) {
			node := build.NodeOf[m]
			st := enc.State().Snapshot()
			names, err := dec.DecodeNames(st, node)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			var truth []string
			for _, f := range v.Stack() {
				truth = append(truth, f.String())
			}
			if strings.Join(names, ">") != strings.Join(truth, ">") {
				t.Fatalf("recursion decode mismatch:\n  got  %v\n  want %v", names, truth)
			}
			checked++
		}
		err = vm.Run()
		if err != nil && !strings.Contains(err.Error(), "depth") {
			t.Fatal(err)
		}
		if checked == 0 {
			t.Fatal("no emits checked")
		}
	}
}

// figure6Program realizes Figure 6: B's virtual call statically dispatches
// to D; the dynamically loaded X joins the dispatch set at runtime, and X
// calls E (hazardous) and D (benign).
const figure6Program = `
entry A.main
class A {
  method main {
    load X
    call C.go
    loop 8 { call B.go }
    emit top
  }
}
class B {
  method go { vcall D.impl; emit b }
}
class C {
  method go { call E.run; call D.impl }
}
class D {
  method impl { emit d }
}
class E {
  method run { emit e }
}
dynamic class X extends D {
  method impl { call E.run; call D.impl; emit x }
}
`

func TestFigure6DynamicLoading(t *testing.T) {
	h := newHarness(t, figure6Program, harnessOpts{cptOn: true, seed: 1})
	h.run()
	if h.enc.Hazards == 0 {
		t.Fatal("no hazardous UCPs detected despite dynamic class loading")
	}
	// At least one decoded context must contain a gap (the hazardous
	// B -> X -> E path).
	sawGap := false
	for _, names := range h.decoded {
		for _, n := range names {
			if n == "..." {
				sawGap = true
			}
		}
	}
	if !sawGap {
		t.Fatal("no decoded context shows a gap")
	}
}

func TestFigure6WithoutCPTWouldCorrupt(t *testing.T) {
	// Without call path tracking, dynamic loading corrupts encodings: the
	// decoded context differs from the truth for at least one emit. This
	// is the failure mode Section 4.1 exists to prevent; the test
	// documents that our substrate actually exhibits it.
	prog := lang.MustParse(figure6Program)
	build, err := cha.Build(prog, cha.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(build, res.Spec, nil) // no CPT
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(plan)
	vm, err := minivm.NewVM(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	vm.SetProbes(enc)
	vm.SetInstrumented(plan.InstrumentedMethods())
	dec := encoding.NewDecoder(res.Spec)
	mismatch := false
	vm.OnEmit = func(v *minivm.VM, m minivm.MethodRef, _ string) {
		node, known := build.NodeOf[m]
		if !known {
			return
		}
		st := enc.State().Snapshot()
		names, err := dec.DecodeNames(st, node)
		if err != nil {
			mismatch = true // undecodable is also corruption
			return
		}
		var truth []string
		for _, f := range v.Stack() {
			if _, ok := build.NodeOf[f]; ok {
				truth = append(truth, f.String())
			}
		}
		if strings.Join(names, ">") != strings.Join(truth, ">") {
			mismatch = true
		}
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if !mismatch {
		t.Fatal("expected at least one corrupted context without CPT")
	}
}

// figure7Program realizes Figure 7: the app method B calls into library
// code (D, F) which calls back into the app method G; under
// encoding-application the library is excluded and G's entry detects the
// UCP, recovering the app-only context A B ... G.
const figure7Program = `
entry A.main
class A {
  method main {
    call B.go
    emit top
  }
}
class B {
  method go { call D.lib; emit b }
}
library class D {
  method lib { call F.lib }
}
library class F {
  method lib { call G.cb }
}
class G {
  method cb { emit g }
}
`

func TestFigure7SelectiveEncoding(t *testing.T) {
	h := newHarness(t, figure7Program, harnessOpts{
		setting: cha.EncodingApplication, cptOn: true, seed: 2,
	})
	h.run()
	if h.enc.Hazards == 0 {
		t.Fatal("library call-back not detected as hazardous UCP")
	}
	// The emit inside G must decode to A.main > B.go > ... > G.cb.
	found := false
	for _, names := range h.decoded {
		if strings.Join(names, ">") == "A.main>B.go>...>G.cb" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected decoded context A.main>B.go>...>G.cb; got %v", h.decoded)
	}
}

func TestSmallWidthAnchorsEndToEnd(t *testing.T) {
	// Force anchor nodes with a small width and verify encodings remain
	// exact across a run that traverses anchors repeatedly.
	src := `
entry M.main
class M {
  method main { loop 6 { call M.a; call M.b } emit top }
  method a { call M.c; call M.d }
  method b { call M.c; call M.d }
  method c { call M.e; emit c }
  method d { call M.e; call M.e; emit d }
  method e { emit e }
}
`
	h := newHarness(t, src, harnessOpts{maxID: 3, seed: 0})
	h.run()
	if len(h.plan.Spec.Anchors) == 0 {
		t.Fatal("expected anchors at width 3")
	}
	if h.enc.MaxID > 3 {
		t.Fatalf("runtime ID %d exceeded MaxID 3", h.enc.MaxID)
	}
}

func TestEncoderResetReproducible(t *testing.T) {
	prog := lang.MustParse(virtualProgram)
	build, err := cha.Build(prog, cha.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(build, res.Spec, cpt.Compute(build.Graph))
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(plan)
	run := func() uint64 {
		vm, err := minivm.NewVM(prog, 9)
		if err != nil {
			t.Fatal(err)
		}
		vm.SetProbes(enc)
		vm.SetInstrumented(plan.InstrumentedMethods())
		var last uint64
		vm.OnEmit = func(*minivm.VM, minivm.MethodRef, string) { last = enc.State().ID }
		if err := vm.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	a := run()
	enc.Reset()
	b := run()
	if a != b {
		t.Fatalf("reset not reproducible: %d vs %d", a, b)
	}
}

func TestPlanRejectsForeignSpec(t *testing.T) {
	progA := lang.MustParse(virtualProgram)
	buildA, _ := cha.Build(progA, cha.Options{})
	buildB, _ := cha.Build(progA, cha.Options{})
	res, err := core.Encode(buildA.Graph, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlan(buildB, res.Spec, nil); err == nil {
		t.Fatal("plan accepted a spec computed over a different graph")
	}
}

// TestExceptionsKeepEncodingBalanced: exceptions unwind through
// instrumented frames; the try/finally-style probe discipline must keep the
// encoding exact, including at emits inside catch handlers.
func TestExceptionsKeepEncodingBalanced(t *testing.T) {
	src := `
entry A.main
class A {
  method main {
    loop 4 {
      try { call A.work } catch { call A.recover; emit handled }
    }
    emit end
  }
  method work { call B.step; vcall C.go; emit worked }
  method recover { emit recovering }
}
class B {
  method step { rthrow 3 blew; emit stepped }
}
class C { method go { emit c } }
class C2 extends C { method go { throw always; emit nope } }
`
	for seed := uint64(0); seed < 6; seed++ {
		h := newHarness(t, src, harnessOpts{seed: seed, cptOn: seed%2 == 0})
		h.run()
	}
}
