// Package cha constructs call graphs from minivm programs using class
// hierarchy analysis, the role WALA's 0-CFA builder plays in the paper's
// implementation (Section 5): a context-insensitive call graph where a
// virtual call site gets one edge per possible dispatch target.
//
// Two settings mirror Section 6.1:
//
//   - encoding-all: every method of every statically loaded class is a node;
//   - encoding-application: library classes are excluded entirely — their
//     methods are neither nodes nor instrumented, and calls that flow through
//     them surface at runtime as unexpected call paths handled by call path
//     tracking (Section 4.2).
//
// Dynamically loadable classes are never part of the graph; that is the
// whole point of the paper's Section 4.1.
package cha

import (
	"fmt"

	"deltapath/internal/callgraph"
	"deltapath/internal/minivm"
)

// Setting selects which methods are analysed and instrumented.
type Setting int

const (
	// EncodingAll includes library classes in the call graph.
	EncodingAll Setting = iota
	// EncodingApplication excludes library classes (Section 4.2).
	EncodingApplication
)

func (s Setting) String() string {
	if s == EncodingApplication {
		return "encoding-application"
	}
	return "encoding-all"
}

// Options configures graph construction.
type Options struct {
	Setting Setting
	// KeepUnreachable retains methods not reachable from the entry.
	// The default (false) prunes them, as the paper's static analysis does
	// when reporting call-graph sizes.
	KeepUnreachable bool
	// ExcludeMethods removes individual methods from the graph the same
	// way library classes are removed under EncodingApplication: they are
	// neither nodes nor instrumented, and call path tracking bridges
	// paths through them. Used by the pruned encoding of Section 8.
	ExcludeMethods map[minivm.MethodRef]bool
}

// Result is a constructed call graph plus the mappings the instrumenter
// needs to connect graph entities back to program entities.
type Result struct {
	Graph *callgraph.Graph
	// NodeOf maps a method to its node. Methods excluded from the graph
	// (library methods under EncodingApplication, unreachable methods)
	// are absent.
	NodeOf map[minivm.MethodRef]callgraph.NodeID
	// RefOf is the inverse of NodeOf, indexed by NodeID.
	RefOf []minivm.MethodRef
	// SpawnEntries lists the statically known executor-task entry methods
	// (OpSpawn targets) present in the graph. Calling contexts of a task
	// root at its entry, so these must be piece-start anchors.
	SpawnEntries []minivm.MethodRef
	// Setting records which setting built this result.
	Setting Setting
}

// Node returns the node for a method, or callgraph.InvalidNode.
func (r *Result) Node(m minivm.MethodRef) callgraph.NodeID {
	if id, ok := r.NodeOf[m]; ok {
		return id
	}
	return callgraph.InvalidNode
}

// Build constructs the call graph of prog's statically loaded classes.
func Build(prog *minivm.Program, opts Options) (*Result, error) {
	return buildOver(prog.Entry, prog.Classes, opts, nil)
}

// buildOver is the builder shared by Build and Extend: it constructs the
// call graph of the given analysed class set (static classes, plus — for
// Extend — absorbed dynamic classes appended in absorption order). forced,
// when non-nil, is a node-order prefix: those methods get the first node
// ids, in order, so an extended graph keeps every previous node id (the
// prefix property core.Extend requires).
func buildOver(entryRef minivm.MethodRef, analysed []*minivm.Class, opts Options, forced []minivm.MethodRef) (*Result, error) {
	h := NewHierarchy(analysed)

	// Full static graph first (both settings need it: reachability under
	// encoding-application is still defined through library code). Methods
	// are interned to dense int32 ids as they appear, so edge storage and
	// the reachability sweep below work on ints, not two-string structs —
	// at huge method counts the per-edge MethodRef hashing dominated.
	intern := make(map[minivm.MethodRef]int32)
	var refs []minivm.MethodRef
	mid := func(ref minivm.MethodRef) int32 {
		if i, ok := intern[ref]; ok {
			return i
		}
		i := int32(len(refs))
		intern[ref] = i
		refs = append(refs, ref)
		return i
	}
	type edgeRec struct {
		from int32
		site int32
		to   int32
	}
	var edges []edgeRec
	var spawns []int32
	spawnSeen := make(map[int32]bool)
	appOnly := opts.Setting == EncodingApplication

	entryID := mid(entryRef)
	for _, c := range analysed {
		for _, m := range c.Methods {
			from := mid(minivm.MethodRef{Class: c.Name, Method: m.Name})
			WalkCalls(m.Body, func(in *minivm.Instr) {
				switch in.Op {
				case minivm.OpCall:
					edges = append(edges, edgeRec{from, in.Site, mid(minivm.MethodRef{Class: in.Class, Method: in.Name})})
				case minivm.OpVCall:
					for _, target := range h.Dispatch(in.Class, in.Name) {
						edges = append(edges, edgeRec{from, in.Site, mid(target)})
					}
				case minivm.OpSpawn:
					// A spawn is not a call edge — the task runs on its
					// own stack — but its target is a reachability root
					// and a context root.
					ref := mid(minivm.MethodRef{Class: in.Class, Method: in.Name})
					if !spawnSeen[ref] {
						spawnSeen[ref] = true
						spawns = append(spawns, ref)
					}
				}
			})
		}
	}

	// Reachability over the full graph from the entry and every statically
	// known task entry: counting-sorted CSR adjacency, iterative sweep.
	adjStart := make([]int32, len(refs)+1)
	for _, e := range edges {
		adjStart[e.from+1]++
	}
	for v := 0; v < len(refs); v++ {
		adjStart[v+1] += adjStart[v]
	}
	adjTo := make([]int32, len(edges))
	fill := make([]int32, len(refs))
	copy(fill, adjStart[:len(refs)])
	for _, e := range edges {
		adjTo[fill[e.from]] = e.to
		fill[e.from]++
	}
	reach := make([]bool, len(refs))
	reach[entryID] = true
	work := []int32{entryID}
	for _, sp := range spawns {
		if !reach[sp] {
			reach[sp] = true
			work = append(work, sp)
		}
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for j := adjStart[v]; j < adjStart[v+1]; j++ {
			if w := adjTo[j]; !reach[w] {
				reach[w] = true
				work = append(work, w)
			}
		}
	}
	reachable := func(ref minivm.MethodRef) bool {
		i, ok := intern[ref]
		return ok && reach[i]
	}

	include := func(ref minivm.MethodRef) bool {
		cls := h.Class(ref.Class)
		if cls == nil || cls.Method(ref.Method) == nil {
			return false // call to a dynamic or unknown class: not a static node
		}
		if appOnly && cls.Library {
			return false
		}
		if opts.ExcludeMethods[ref] {
			return false
		}
		if !opts.KeepUnreachable && !reachable(ref) {
			return false
		}
		return true
	}
	if opts.ExcludeMethods[entryRef] {
		return nil, fmt.Errorf("cha: entry method %s cannot be excluded", entryRef)
	}

	if appOnly {
		ec := h.Class(entryRef.Class)
		if ec != nil && ec.Library {
			return nil, fmt.Errorf("cha: entry method %s is in a library class; it cannot be excluded", entryRef)
		}
	}

	res := &Result{
		Graph:   callgraph.New(),
		NodeOf:  make(map[minivm.MethodRef]callgraph.NodeID),
		Setting: opts.Setting,
	}
	add := func(ref minivm.MethodRef) callgraph.NodeID {
		if id, ok := res.NodeOf[ref]; ok {
			return id
		}
		cls := h.Class(ref.Class)
		id := res.Graph.AddNode(ref.String(), cls.Library)
		res.NodeOf[ref] = id
		res.RefOf = append(res.RefOf, ref)
		return id
	}

	// Deterministic node order: declaration order, entry's method first if
	// included (it always is — reach includes it). A forced prefix (the
	// previous build's node order, under Extend) comes before everything;
	// growing the analysed set can only add includable methods, so a forced
	// method failing include means the caller changed options mid-stream.
	for _, ref := range forced {
		if !include(ref) {
			return nil, fmt.Errorf("cha: extension would drop %s from the graph (options must match the previous build)", ref)
		}
		add(ref)
	}
	if !include(entryRef) {
		return nil, fmt.Errorf("cha: entry method %s not found among analysed classes", entryRef)
	}
	add(entryRef)
	for _, c := range analysed {
		for _, m := range c.Methods {
			ref := minivm.MethodRef{Class: c.Name, Method: m.Name}
			if include(ref) {
				add(ref)
			}
		}
	}
	// Per-intern-id node table so the edge loop needs no MethodRef hashing.
	nodeByID := make([]callgraph.NodeID, len(refs))
	for i, ref := range refs {
		nodeByID[i] = callgraph.InvalidNode
		if id, ok := res.NodeOf[ref]; ok {
			nodeByID[i] = id
		}
	}
	for _, e := range edges {
		from, to := nodeByID[e.from], nodeByID[e.to]
		if from != callgraph.InvalidNode && to != callgraph.InvalidNode {
			res.Graph.AddEdge(from, e.site, to)
		}
	}
	for _, sp := range spawns {
		if n := nodeByID[sp]; n != callgraph.InvalidNode {
			res.SpawnEntries = append(res.SpawnEntries, refs[sp])
			res.Graph.MarkContextRoot(n)
		}
	}
	res.Graph.SetEntry(res.NodeOf[entryRef])
	if err := res.Graph.Validate(); err != nil {
		return nil, err
	}
	return res, nil
}

// WalkCalls applies f to every instruction in body, recursing into loops
// and try/catch blocks. Exported for sibling call-graph builders
// (package rta) so call-site discovery has a single definition.
func WalkCalls(body []minivm.Instr, f func(*minivm.Instr)) {
	for i := range body {
		in := &body[i]
		f(in)
		switch in.Op {
		case minivm.OpLoop:
			WalkCalls(in.Body, f)
		case minivm.OpTry:
			WalkCalls(in.Body, f)
			WalkCalls(in.Handler, f)
		}
	}
}

// Hierarchy indexes the static class set. Exported for sibling
// call-graph builders (package rta); dispatch-set semantics must stay
// identical across builders or their graphs are not comparable.
type Hierarchy struct {
	byName   map[string]*minivm.Class
	children map[string][]string // class -> direct static subclasses, declaration order
}

func NewHierarchy(classes []*minivm.Class) *Hierarchy {
	h := &Hierarchy{
		byName:   make(map[string]*minivm.Class, len(classes)),
		children: make(map[string][]string),
	}
	for _, c := range classes {
		h.byName[c.Name] = c
	}
	for _, c := range classes {
		if c.Super != "" {
			h.children[c.Super] = append(h.children[c.Super], c.Name)
		}
	}
	return h
}

// Class returns the static class named name, or nil.
func (h *Hierarchy) Class(name string) *minivm.Class { return h.byName[name] }

// Dispatch returns the CHA dispatch set of a virtual call on class.method:
// every static class at or below class that declares method, in
// pre-order over the declaration-ordered hierarchy. This matches the VM's
// runtime dispatch-table construction restricted to static classes.
func (h *Hierarchy) Dispatch(class, method string) []minivm.MethodRef {
	var out []minivm.MethodRef
	var visit func(name string)
	visit = func(name string) {
		c := h.byName[name]
		if c == nil {
			return
		}
		if c.Method(method) != nil {
			out = append(out, minivm.MethodRef{Class: name, Method: method})
		}
		for _, sub := range h.children[name] {
			visit(sub)
		}
	}
	visit(class)
	return out
}
