package cha

import (
	"fmt"

	"deltapath/internal/minivm"
)

// PruneForTargets implements the pruned-encoding analysis of Section 8
// (Future Work): when the user only needs the calling contexts of a known
// set of target methods, every method that does not invoke a target —
// directly or transitively — can skip encoding entirely. The returned set
// contains the methods to exclude (via Options.ExcludeMethods); methods
// that can reach a target, and the targets themselves, are kept.
//
// The entry method is always kept: it is the root of every context.
func PruneForTargets(prog *minivm.Program, targets map[minivm.MethodRef]bool) (map[minivm.MethodRef]bool, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("cha: no target methods given")
	}
	h := NewHierarchy(prog.Classes)
	// Reverse edges of the full static graph.
	rev := make(map[minivm.MethodRef][]minivm.MethodRef)
	all := make([]minivm.MethodRef, 0, 64)
	for _, c := range prog.Classes {
		for _, m := range c.Methods {
			from := minivm.MethodRef{Class: c.Name, Method: m.Name}
			all = append(all, from)
			WalkCalls(m.Body, func(in *minivm.Instr) {
				switch in.Op {
				case minivm.OpCall:
					to := minivm.MethodRef{Class: in.Class, Method: in.Name}
					rev[to] = append(rev[to], from)
				case minivm.OpVCall:
					for _, to := range h.Dispatch(in.Class, in.Name) {
						rev[to] = append(rev[to], from)
					}
				}
			})
		}
	}
	keep := make(map[minivm.MethodRef]bool)
	var work []minivm.MethodRef
	for t := range targets {
		cls := h.Class(t.Class)
		if cls == nil || cls.Method(t.Method) == nil {
			return nil, fmt.Errorf("cha: target method %s not found among static classes", t)
		}
		if !keep[t] {
			keep[t] = true
			work = append(work, t)
		}
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, p := range rev[v] {
			if !keep[p] {
				keep[p] = true
				work = append(work, p)
			}
		}
	}
	keep[prog.Entry] = true
	exclude := make(map[minivm.MethodRef]bool)
	for _, ref := range all {
		if !keep[ref] {
			exclude[ref] = true
		}
	}
	return exclude, nil
}
