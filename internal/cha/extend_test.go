package cha

import (
	"testing"

	"deltapath/internal/callgraph"
	"deltapath/internal/minivm"
)

// extendProg builds a program with a virtual site whose dispatch set grows
// when dynamic classes are absorbed: Main.main vcalls Base.run; Sub and
// SubSub (dynamic) override run.
func extendProg(t *testing.T) *minivm.Program {
	t.Helper()
	p := &minivm.Program{
		Classes: []*minivm.Class{
			{Name: "Main", Methods: []*minivm.Method{
				{Name: "main", Body: []minivm.Instr{
					minivm.VCall("Base", "run"),
				}},
			}},
			{Name: "Base", Methods: []*minivm.Method{
				{Name: "run", Body: []minivm.Instr{minivm.Work(1)}},
			}},
		},
		Dynamic: []*minivm.Class{
			{Name: "Sub", Super: "Base", Methods: []*minivm.Method{
				{Name: "run", Body: []minivm.Instr{
					minivm.Call("Base", "run"),
					minivm.Spawn("Base", "run"),
				}},
			}},
			{Name: "SubSub", Super: "Sub", Methods: []*minivm.Method{
				{Name: "run", Body: []minivm.Instr{minivm.Work(1)}},
			}},
		},
		Entry: minivm.MethodRef{Class: "Main", Method: "main"},
	}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExtendAbsorbsDynamicClass(t *testing.T) {
	p := extendProg(t)
	base, err := Build(p, Options{KeepUnreachable: true})
	if err != nil {
		t.Fatal(err)
	}
	grown, err := Extend(base, p, []string{"Sub"}, Options{KeepUnreachable: true})
	if err != nil {
		t.Fatal(err)
	}
	// Old nodes keep their ids.
	for ref, id := range base.NodeOf {
		if grown.NodeOf[ref] != id {
			t.Errorf("node %s renumbered %d -> %d", ref, id, grown.NodeOf[ref])
		}
	}
	if grown.Graph.NumNodes() != base.Graph.NumNodes()+1 {
		t.Fatalf("expected exactly one new node, got %d -> %d nodes",
			base.Graph.NumNodes(), grown.Graph.NumNodes())
	}
	subRun := grown.Node(minivm.MethodRef{Class: "Sub", Method: "run"})
	if subRun == callgraph.InvalidNode {
		t.Fatal("Sub.run not in extended graph")
	}
	// The existing virtual site gained the new dispatch target.
	main := grown.NodeOf[p.Entry]
	site := callgraph.Site{Caller: main, Label: 0}
	found := false
	for _, e := range grown.Graph.SiteTargets(site) {
		if e.Callee == subRun {
			found = true
		}
	}
	if !found {
		t.Errorf("vcall site did not gain edge to Sub.run; targets=%v", grown.Graph.SiteTargets(site))
	}
	// The spawn inside the absorbed class became a context root.
	baseRun := grown.NodeOf[minivm.MethodRef{Class: "Base", Method: "run"}]
	rooted := false
	for _, r := range grown.Graph.ContextRoots() {
		if r == baseRun {
			rooted = true
		}
	}
	if !rooted {
		t.Error("spawn target in absorbed class not marked as context root")
	}
	// prev untouched.
	if base.Graph.NumNodes() != 2 {
		t.Errorf("previous build mutated: %d nodes", base.Graph.NumNodes())
	}

	// Chained absorption: SubSub extends Sub, so it needs Sub in the list.
	grown2, err := Extend(grown, p, []string{"Sub", "SubSub"}, Options{KeepUnreachable: true})
	if err != nil {
		t.Fatal(err)
	}
	if grown2.Graph.NumNodes() != grown.Graph.NumNodes()+1 {
		t.Fatalf("expected one more node, got %d", grown2.Graph.NumNodes())
	}
	for ref, id := range grown.NodeOf {
		if grown2.NodeOf[ref] != id {
			t.Errorf("node %s renumbered %d -> %d", ref, id, grown2.NodeOf[ref])
		}
	}
}

func TestExtendMatchesFreshBuild(t *testing.T) {
	// Extending must produce the same graph a from-scratch build over the
	// merged class list does (node ids included): Build adds statics in
	// declaration order, and absorption appends — so the orders line up.
	p := extendProg(t)
	base, err := Build(p, Options{KeepUnreachable: true})
	if err != nil {
		t.Fatal(err)
	}
	grown, err := Extend(base, p, []string{"Sub", "SubSub"}, Options{KeepUnreachable: true})
	if err != nil {
		t.Fatal(err)
	}
	merged := &minivm.Program{
		Classes: append(append([]*minivm.Class{}, p.Classes...), p.Dynamic...),
		Entry:   p.Entry,
	}
	fresh, err := Build(merged, Options{KeepUnreachable: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := grown.Graph.NumNodes(), fresh.Graph.NumNodes(); got != want {
		t.Fatalf("node count %d, fresh build has %d", got, want)
	}
	for ref, id := range fresh.NodeOf {
		if grown.NodeOf[ref] != id {
			t.Errorf("node %s: extend id %d, fresh id %d", ref, grown.NodeOf[ref], id)
		}
	}
	if got, want := grown.Graph.NumEdges(), fresh.Graph.NumEdges(); got != want {
		t.Fatalf("edge count %d, fresh build has %d", got, want)
	}
	for _, n := range fresh.Graph.Nodes() {
		for _, e := range fresh.Graph.Out(n) {
			if !grown.Graph.HasEdge(e) {
				t.Errorf("missing edge %v", e)
			}
		}
	}
}

func TestExtendRejects(t *testing.T) {
	p := extendProg(t)
	base, err := Build(p, Options{KeepUnreachable: true})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		absorbed []string
		opts     Options
	}{
		{"unknown class", []string{"Nope"}, Options{KeepUnreachable: true}},
		{"static class", []string{"Base"}, Options{KeepUnreachable: true}},
		{"absorbed twice", []string{"Sub", "Sub"}, Options{KeepUnreachable: true}},
		{"missing super", []string{"SubSub"}, Options{KeepUnreachable: true}},
		{"setting mismatch", []string{"Sub"}, Options{Setting: EncodingApplication, KeepUnreachable: true}},
	}
	for _, tc := range cases {
		if _, err := Extend(base, p, tc.absorbed, tc.opts); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := Extend(nil, p, nil, Options{KeepUnreachable: true}); err == nil {
		t.Error("nil prev: expected error")
	}
}
