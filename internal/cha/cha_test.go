package cha

import (
	"strings"
	"testing"

	"deltapath/internal/callgraph"
	"deltapath/internal/lang"
	"deltapath/internal/minivm"
)

const src = `
entry Main.main
class Main {
  method main {
    call Main.init
    vcall Shape.area
    call Lib.helper
  }
  method init { work 1 }
  method unused { work 1 }
}
class Shape { method area { work 1 } }
class Circle extends Shape { method area { call Lib.log } }
class Square extends Shape { method area { work 1 } }
class Tri extends Circle { }          # inherits area, declares nothing
library class Lib {
  method helper { call Main2.appCallback }
  method log { work 1 }
}
class Main2 {
  method appCallback { emit cb }
}
dynamic class Dyn extends Shape { method area { work 1 } }
`

func build(t *testing.T, setting Setting) *Result {
	t.Helper()
	prog := lang.MustParse(src)
	res, err := Build(prog, Options{Setting: setting})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEncodingAllNodes(t *testing.T) {
	res := build(t, EncodingAll)
	g := res.Graph
	// Reachable: Main.main, Main.init, Shape.area, Circle.area,
	// Square.area, Lib.helper, Lib.log, Main2.appCallback = 8.
	if g.NumNodes() != 8 {
		t.Fatalf("nodes = %d, want 8:\n%s", g.NumNodes(), g.DOT())
	}
	if res.Node(minivm.MethodRef{Class: "Main", Method: "unused"}) != callgraph.InvalidNode {
		t.Fatal("unreachable method included")
	}
	if res.Node(minivm.MethodRef{Class: "Dyn", Method: "area"}) != callgraph.InvalidNode {
		t.Fatal("dynamic class method included in static graph")
	}
}

func TestVirtualDispatchEdges(t *testing.T) {
	res := build(t, EncodingAll)
	g := res.Graph
	mainN := res.Node(minivm.MethodRef{Class: "Main", Method: "main"})
	// The vcall Shape.area site must have 3 targets: Shape, Circle, Square
	// (Tri declares nothing so it adds no target).
	var vsite callgraph.Site
	found := false
	for _, s := range g.Sites() {
		if s.Caller == mainN && len(g.SiteTargets(s)) > 1 {
			vsite = s
			found = true
		}
	}
	if !found {
		t.Fatalf("no virtual site found for Main.main")
	}
	targets := g.SiteTargets(vsite)
	if len(targets) != 3 {
		t.Fatalf("dispatch targets = %d, want 3", len(targets))
	}
	names := make(map[string]bool)
	for _, e := range targets {
		names[g.Name(e.Callee)] = true
	}
	for _, want := range []string{"Shape.area", "Circle.area", "Square.area"} {
		if !names[want] {
			t.Errorf("missing dispatch target %s (have %v)", want, names)
		}
	}
}

func TestDispatchSetMatchesVM(t *testing.T) {
	// The static CHA dispatch set must equal the VM's runtime dispatch set
	// before any dynamic loading: otherwise call path tracking would see
	// phantom UCPs.
	prog := lang.MustParse(src)
	res, err := Build(prog, Options{Setting: EncodingAll})
	if err != nil {
		t.Fatal(err)
	}
	vm, err := minivm.NewVM(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	vmSet := make(map[string]bool)
	for _, r := range vm.DispatchTargets("Shape", "area") {
		vmSet[r.String()] = true
	}
	g := res.Graph
	mainN := res.Node(minivm.MethodRef{Class: "Main", Method: "main"})
	for _, s := range g.Sites() {
		if s.Caller != mainN || len(g.SiteTargets(s)) <= 1 {
			continue
		}
		chaSet := make(map[string]bool)
		for _, e := range g.SiteTargets(s) {
			chaSet[g.Name(e.Callee)] = true
		}
		if len(chaSet) != len(vmSet) {
			t.Fatalf("CHA set %v != VM set %v", chaSet, vmSet)
		}
		for k := range chaSet {
			if !vmSet[k] {
				t.Fatalf("CHA target %s not in VM set %v", k, vmSet)
			}
		}
	}
}

func TestEncodingApplicationExcludesLibrary(t *testing.T) {
	res := build(t, EncodingApplication)
	g := res.Graph
	for _, id := range g.Nodes() {
		if strings.HasPrefix(g.Name(id), "Lib.") {
			t.Fatalf("library method %s present under encoding-application", g.Name(id))
		}
	}
	// Main2.appCallback is reachable only through Lib.helper; it must STILL
	// be a node (Figure 7: G stays in the app graph) but with no incoming
	// edges.
	cb := res.Node(minivm.MethodRef{Class: "Main2", Method: "appCallback"})
	if cb == callgraph.InvalidNode {
		t.Fatal("app method reachable only via library dropped from graph")
	}
	if len(g.In(cb)) != 0 {
		t.Fatalf("appCallback has %d in-edges, want 0 (library edges excluded)", len(g.In(cb)))
	}
	// The call Main.main -> Lib.helper must not be an edge.
	mainN := res.Node(minivm.MethodRef{Class: "Main", Method: "main"})
	for _, e := range g.Out(mainN) {
		if strings.HasPrefix(g.Name(e.Callee), "Lib.") {
			t.Fatalf("edge into library survived: %s", g.Name(e.Callee))
		}
	}
}

func TestEncodingApplicationSmaller(t *testing.T) {
	all := build(t, EncodingAll)
	app := build(t, EncodingApplication)
	if app.Graph.NumNodes() >= all.Graph.NumNodes() {
		t.Fatalf("application graph (%d nodes) not smaller than all (%d)",
			app.Graph.NumNodes(), all.Graph.NumNodes())
	}
	if app.Graph.NumSites() >= all.Graph.NumSites() {
		t.Fatalf("application sites (%d) not fewer than all (%d)",
			app.Graph.NumSites(), all.Graph.NumSites())
	}
}

func TestKeepUnreachable(t *testing.T) {
	prog := lang.MustParse(src)
	res, err := Build(prog, Options{Setting: EncodingAll, KeepUnreachable: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Node(minivm.MethodRef{Class: "Main", Method: "unused"}) == callgraph.InvalidNode {
		t.Fatal("KeepUnreachable dropped an unreachable method")
	}
}

func TestLibraryEntryRejected(t *testing.T) {
	prog := lang.MustParse(`
entry L.m
library class L { method m { work 1 } }`)
	if _, err := Build(prog, Options{Setting: EncodingApplication}); err == nil {
		t.Fatal("library entry accepted under encoding-application")
	}
	if _, err := Build(prog, Options{Setting: EncodingAll}); err != nil {
		t.Fatalf("library entry rejected under encoding-all: %v", err)
	}
}

func TestRefOfInverse(t *testing.T) {
	res := build(t, EncodingAll)
	for ref, id := range res.NodeOf {
		if res.RefOf[id] != ref {
			t.Fatalf("RefOf[%d] = %v, want %v", id, res.RefOf[id], ref)
		}
		if res.Graph.Name(id) != ref.String() {
			t.Fatalf("node name %q != ref %q", res.Graph.Name(id), ref)
		}
	}
}

func TestRecursionEdgesInGraph(t *testing.T) {
	prog := lang.MustParse(`
entry A.main
class A {
  method main { call A.rec }
  method rec { call A.rec; work 1 }
}`)
	res, err := Build(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Graph.RecursiveEdges()
	if len(rec) != 1 {
		t.Fatalf("recursive edges = %d, want 1 (self loop)", len(rec))
	}
}

func TestEntryIsNodeZero(t *testing.T) {
	res := build(t, EncodingAll)
	entry, ok := res.Graph.Entry()
	if !ok || entry != 0 {
		t.Fatalf("entry node = %d (ok=%v), want 0", entry, ok)
	}
}

func TestPruneForTargets(t *testing.T) {
	prog := lang.MustParse(`
entry P.main
class P {
  method main { call P.a; call P.b }
  method a { call P.t }
  method b { work 1 }
  method t { emit hit }
}`)
	exclude, err := PruneForTargets(prog, map[minivm.MethodRef]bool{
		{Class: "P", Method: "t"}: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !exclude[minivm.MethodRef{Class: "P", Method: "b"}] {
		t.Fatal("P.b cannot reach the target and must be excluded")
	}
	for _, keep := range []string{"main", "a", "t"} {
		if exclude[minivm.MethodRef{Class: "P", Method: keep}] {
			t.Fatalf("P.%s leads to the target and must be kept", keep)
		}
	}
	// Build with the exclusion: P.b gone from the graph.
	res, err := Build(prog, Options{ExcludeMethods: exclude})
	if err != nil {
		t.Fatal(err)
	}
	if res.Node(minivm.MethodRef{Class: "P", Method: "b"}) != callgraph.InvalidNode {
		t.Fatal("excluded method still in graph")
	}
	// Errors: unknown target, empty target set, excluded entry.
	if _, err := PruneForTargets(prog, map[minivm.MethodRef]bool{{Class: "X", Method: "y"}: true}); err == nil {
		t.Fatal("unknown target accepted")
	}
	if _, err := PruneForTargets(prog, nil); err == nil {
		t.Fatal("empty target set accepted")
	}
	if _, err := Build(prog, Options{ExcludeMethods: map[minivm.MethodRef]bool{prog.Entry: true}}); err == nil {
		t.Fatal("excluded entry accepted")
	}
}

func TestPruneForTargetsVirtual(t *testing.T) {
	// Reaching a target through a virtual call keeps the caller.
	prog := lang.MustParse(`
entry P.main
class P { method main { vcall Base.go; call P.other } method other { work 1 } }
class Base { method go { work 1 } }
class Sub extends Base { method go { call P2.hit } }
class P2 { method hit { emit hit } }
`)
	exclude, err := PruneForTargets(prog, map[minivm.MethodRef]bool{
		{Class: "P2", Method: "hit"}: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if exclude[minivm.MethodRef{Class: "Sub", Method: "go"}] {
		t.Fatal("Sub.go reaches the target via its body and must be kept")
	}
	if exclude[minivm.MethodRef{Class: "P", Method: "main"}] {
		t.Fatal("P.main reaches the target via dispatch and must be kept")
	}
	if !exclude[minivm.MethodRef{Class: "P", Method: "other"}] {
		t.Fatal("P.other must be excluded")
	}
}
