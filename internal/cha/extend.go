package cha

import (
	"fmt"

	"deltapath/internal/minivm"
)

// Extend rebuilds prev's call graph with dynamic classes absorbed into the
// analysed world. It is the static-analysis half of incremental encoding
// (the paper's answer to "what if a dynamically loaded class matters enough
// to re-analyse?"): the absorbed classes become ordinary graph nodes, their
// methods join the dispatch sets of existing virtual sites, and everything
// prev already modelled keeps its node id — the prefix property
// core.Extend requires to patch the encoding instead of recomputing it.
//
// absorbed is the complete ordered list of dynamic class names now treated
// as analysed: the ones prev was already extended with (if any) followed by
// the newly loaded ones, in absorption order. Passing the full list keeps
// Extend a pure function of (program, absorbed set); prev only pins the
// node order. opts must match the options prev was built with.
//
// prev is never mutated; the result is a fresh graph and fresh maps, so
// readers pinned to the old epoch can keep using prev concurrently.
func Extend(prev *Result, prog *minivm.Program, absorbed []string, opts Options) (*Result, error) {
	if prev == nil {
		return nil, fmt.Errorf("cha: Extend needs a previous build")
	}
	if opts.Setting != prev.Setting {
		return nil, fmt.Errorf("cha: Extend setting %v does not match the previous build's %v", opts.Setting, prev.Setting)
	}
	analysed := make([]*minivm.Class, 0, len(prog.Classes)+len(absorbed))
	analysed = append(analysed, prog.Classes...)
	seen := make(map[string]bool, len(absorbed))
	for _, name := range absorbed {
		if seen[name] {
			return nil, fmt.Errorf("cha: class %q absorbed twice", name)
		}
		seen[name] = true
		c := dynamicClass(prog, name)
		if c == nil {
			return nil, fmt.Errorf("cha: absorbed class %q is not among the program's dynamic classes", name)
		}
		analysed = append(analysed, c)
	}
	// A class whose superclass is outside the analysed set would get an
	// incomplete dispatch linkage (the VM loads supers first, so callers
	// must absorb the super-closure).
	names := make(map[string]bool, len(analysed))
	for _, c := range analysed {
		names[c.Name] = true
	}
	for _, c := range analysed[len(prog.Classes):] {
		if c.Super != "" && !names[c.Super] {
			return nil, fmt.Errorf("cha: absorbed class %q extends %q, which is neither static nor absorbed", c.Name, c.Super)
		}
	}

	res, err := buildOver(prog.Entry, analysed, opts, prev.RefOf)
	if err != nil {
		return nil, err
	}
	// Safety net for standalone users (core.Extend re-validates this):
	// growth must be monotone — every old edge survives.
	for _, n := range prev.Graph.Nodes() {
		for _, e := range prev.Graph.Out(n) {
			if !res.Graph.HasEdge(e) {
				return nil, fmt.Errorf("cha: extension removed edge %v", e)
			}
		}
	}
	return res, nil
}

func dynamicClass(prog *minivm.Program, name string) *minivm.Class {
	for _, c := range prog.Dynamic {
		if c.Name == name {
			return c
		}
	}
	return nil
}
