# DeltaPath build/test/eval entry points.

GO ?= go

.PHONY: all build test test-short test-shuffle race bench chaos eval profile-baseline fuzz \
	examples clean lint lint-invariants verify-encodings bench-smoke bench-baseline \
	decode-baseline scale-baseline golden-freshness ci-local serve-smoke ingest-stress \
	extend-soak scale-smoke ingest-bench-smoke

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The CI test step runs with -shuffle=on: any hidden inter-test ordering
# dependency fails loudly instead of lurking.
test-shuffle:
	$(GO) test -shuffle=on ./...

# A short chaos pass rides along via ./... (internal/chaos trims its seed
# counts under -short).
race:
	$(GO) test -race -short ./...

# Full fault-injection suite: ≥1000 seeded runs over the workload corpus,
# every injected fault detected and healed (see internal/chaos). Includes
# the dprofiled SIGKILL soak (soak_test.go): ≥10 kill -9 cycles against a
# live ingest stream with an exact acked-vs-recovered record ledger.
chaos:
	$(GO) test ./internal/chaos -count=1 -v
	$(GO) run ./cmd/dprun -chaos -chaos-rate 0.05 -seed 13 -unique testdata/recursion.mv

# End-to-end ingestion-service smoke through the real binaries: dprun
# -push into dprofiled, every query endpoint, then SIGTERM and SIGKILL
# restarts with exact record preservation (scripts/serve_smoke.sh).
serve-smoke:
	./scripts/serve_smoke.sh

# Concurrent-ingest stress under the race detector: 8 agents hammering a
# deliberately tiny queue with a retry storm; exactly-once delivery and
# visible backpressure sheds are asserted (internal/server).
ingest-stress:
	$(GO) test -race -count=1 -run TestServerIngestStress ./internal/server -v

# Ingest fast-path smoke: the ingest-throughput experiment at a tiny
# configuration end to end (both commit policies over real durable state),
# plus the LSM segment store's flush/recovery round-trip under the race
# detector. The throughput *ratio* is gated by bench-smoke, not here — a
# loaded CI box can't promise one.
ingest-bench-smoke:
	$(GO) test -count=1 -run TestIngestThroughputSmoke ./internal/eval -v
	$(GO) test -race -count=1 -run 'TestSegmentRoundTrip|TestSegmentRecoveryRoundTrip|TestGroupCommit' ./internal/server -v

# Incremental-encoding soak: ≥200 random interleavings of class loads,
# calls, Extend publications, and mid-run Adopts, frame-exact against a
# whole-program oracle, under the race detector (extend_test.go).
extend-soak:
	EXTEND_SOAK_TRIALS=200 $(GO) test -race -count=1 -run TestExtendSoak . -v

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's evaluation artifacts into results/.
eval:
	mkdir -p results
	$(GO) run ./cmd/dpbench -experiment table1 | tee results/table1.txt
	$(GO) run ./cmd/dpbench -experiment fig8 -scale 1.0 -repeats 5 | tee results/fig8_full.txt
	$(GO) run ./cmd/dpbench -experiment table2 -scale 0.3 | tee results/table2.txt

# Regenerate the concurrent-profile-store throughput baseline. The JSON
# carries a meta block (num_cpu, gomaxprocs) — scaling numbers are only
# meaningful relative to the machine that produced them.
profile-baseline:
	mkdir -p results
	$(GO) run ./cmd/dpbench -experiment profile -scale 0.1 \
		-bench compress,sunflow,xml.validation -json | tee results/BENCH_0002.json

# Short fuzz smoke over the byte-level parsers and the .dpa verifier
# (also run in CI).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzUnmarshalContext -fuzztime 10s ./internal/encoding
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 10s ./internal/encoding
	$(GO) test -run '^$$' -fuzz FuzzCompiledDecode -fuzztime 10s ./internal/encoding
	$(GO) test -run '^$$' -fuzz FuzzProfileReader -fuzztime 10s ./internal/profile
	$(GO) test -run '^$$' -fuzz FuzzVerify -fuzztime 10s ./internal/verify
	$(GO) test -run '^$$' -fuzz FuzzCheckDelta -fuzztime 10s ./internal/verify
	$(GO) test -run '^$$' -fuzz FuzzExtend -fuzztime 10s .

# Lint: gofmt and vet always; staticcheck/govulncheck when installed (CI
# installs pinned versions — see .github/workflows/ci.yml; offline
# containers just skip them).
lint:
	test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "govulncheck not installed; skipping"; fi

# Project-specific invariants as a go vet plugin (internal/lint: obssink,
# profilelock, magicbytes — see cmd/dplint-go for the protocol).
lint-invariants:
	mkdir -p bin
	$(GO) build -o bin/dplint-go ./cmd/dplint-go
	$(GO) vet -vettool=$(CURDIR)/bin/dplint-go ./...

# Static encoding-soundness certificates: dplint must verify every curated
# program and committed analysis fixture-free of findings (the seeded-defect
# fixtures under testdata/lint are exercised by TestGoldenLint instead —
# they are supposed to fail).
verify-encodings:
	$(GO) run ./cmd/dplint examples/*.mv testdata/*.mv

# Huge-graph scalability gate: one reduced 5×10⁴-node tier end to end —
# generate, analyze with the level-parallel engine and the serial reference,
# assert byte-identical .dpa output, verify serially and on 4 workers with
# byte-identical reports (under -race), compile, decode (see
# scale_smoke_test.go). The full 10⁵–10⁶-node curve is
# `go run ./cmd/dpbench -experiment scale -scale 1.0` (results/scale.txt).
scale-smoke:
	SCALE_SMOKE_NODES=50000 $(GO) test -race -count=1 -run TestScaleSmoke . -v

# Bench-smoke regression gate: re-measure the newest results/BENCH_*.json
# baseline and fail on any key metric >25% worse (see cmd/dpbench/compare.go
# and EXPERIMENTS.md for the gated metrics and re-baselining).
bench-smoke:
	$(GO) run ./cmd/dpbench -compare \
		"$$(ls results/BENCH_*.json | sort | tail -1)" -tolerance 0.25 -repeats 5

# Record a fresh bench-smoke baseline (bump NNNN; commit the file). The
# scale experiment rides along at -scale 0.4 (tiers 40k–400k nodes): the
# gate re-measures only its ≤10⁵-node tiers, and only the machine-
# independent bytes/node plus the identity/verify verdicts. The extend
# experiment contributes the delta-verify-vs-full obligation fractions —
# deterministic counts, so they gate exactly. The ingest experiment
# contributes the group-commit/per-batch throughput ratios at 4 and 8
# agents (the 1-agent row is informational; see cmd/dpbench/compare.go).
bench-baseline:
	mkdir -p results
	$(GO) run ./cmd/dpbench -experiment encode,profile,decode,scale,extend,ingest \
		-bench compress,sunflow,mpegaudio -scale 0.4 -repeats 5 -workers 4 -json \
		> results/BENCH_0010.json

# Regenerate the full million-node scale curve (results/scale.txt) — the
# human-readable companion of the scale rows in the bench baseline, and the
# acceptance artifact for the 10⁶-node tier.
scale-baseline:
	mkdir -p results
	$(GO) run ./cmd/dpbench -experiment scale -scale 1.0 -workers 4 | tee results/scale.txt

# Regenerate the decode-throughput table over the full suite (legacy map
# decoder vs compiled flat tables; results/decode.txt) — the human-readable
# companion of the gated speedup rows in the bench-smoke baseline.
decode-baseline:
	mkdir -p results
	$(GO) run ./cmd/dpbench -experiment decode -scale 0.3 -repeats 3 | tee results/decode.txt

# Golden freshness: regenerate the golden decodes with -update and fail if
# the committed files drift (a stale golden means an unreviewed behavior
# change slipped past).
golden-freshness:
	$(GO) test . -run TestGolden -update
	$(GO) test ./internal/obs -run TestExport -update
	@git diff --exit-code -- testdata/golden testdata/lint internal/obs/testdata || \
		{ echo "golden files drifted: review and commit the regenerated files"; exit 1; }

# Everything CI runs, in CI's order — reproduce a red workflow offline.
ci-local: lint lint-invariants build test-shuffle race verify-encodings serve-smoke ingest-stress ingest-bench-smoke extend-soak golden-freshness bench-smoke scale-smoke
	$(GO) test -run '^$$' -fuzz FuzzUnmarshalContext -fuzztime 5s ./internal/encoding
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 5s ./internal/encoding
	$(GO) test -run '^$$' -fuzz FuzzCompiledDecode -fuzztime 5s ./internal/encoding
	$(GO) test -run '^$$' -fuzz FuzzProfileReader -fuzztime 5s ./internal/profile
	$(GO) test -run '^$$' -fuzz FuzzVerify -fuzztime 5s ./internal/verify
	$(GO) test -run '^$$' -fuzz FuzzCheckDelta -fuzztime 5s ./internal/verify
	$(GO) test -run '^$$' -fuzz FuzzExtend -fuzztime 5s .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/logging
	$(GO) run ./examples/profiling
	$(GO) run ./examples/dynamicload
	$(GO) run ./examples/anomaly

clean:
	rm -f results/*.txt test_output.txt bench_output.txt
