# DeltaPath build/test/eval entry points.

GO ?= go

.PHONY: all build test test-short race bench eval examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's evaluation artifacts into results/.
eval:
	mkdir -p results
	$(GO) run ./cmd/dpbench -experiment table1 | tee results/table1.txt
	$(GO) run ./cmd/dpbench -experiment fig8 -scale 1.0 -repeats 5 | tee results/fig8_full.txt
	$(GO) run ./cmd/dpbench -experiment table2 -scale 0.3 | tee results/table2.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/logging
	$(GO) run ./examples/profiling
	$(GO) run ./examples/dynamicload
	$(GO) run ./examples/anomaly

clean:
	rm -f results/*.txt test_output.txt bench_output.txt
