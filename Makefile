# DeltaPath build/test/eval entry points.

GO ?= go

.PHONY: all build test test-short race bench chaos eval profile-baseline fuzz examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# A short chaos pass rides along via ./... (internal/chaos trims its seed
# counts under -short).
race:
	$(GO) test -race -short ./...

# Full fault-injection suite: ≥1000 seeded runs over the workload corpus,
# every injected fault detected and healed (see internal/chaos).
chaos:
	$(GO) test ./internal/chaos -count=1 -v
	$(GO) run ./cmd/dprun -chaos -chaos-rate 0.05 -seed 13 -unique testdata/recursion.mv

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's evaluation artifacts into results/.
eval:
	mkdir -p results
	$(GO) run ./cmd/dpbench -experiment table1 | tee results/table1.txt
	$(GO) run ./cmd/dpbench -experiment fig8 -scale 1.0 -repeats 5 | tee results/fig8_full.txt
	$(GO) run ./cmd/dpbench -experiment table2 -scale 0.3 | tee results/table2.txt

# Regenerate the concurrent-profile-store throughput baseline. The JSON
# carries a meta block (num_cpu, gomaxprocs) — scaling numbers are only
# meaningful relative to the machine that produced them.
profile-baseline:
	mkdir -p results
	$(GO) run ./cmd/dpbench -experiment profile -scale 0.1 \
		-bench compress,sunflow,xml.validation -json | tee results/BENCH_0002.json

# Short fuzz smoke over the two byte-level parsers (also run in CI).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzUnmarshalContext -fuzztime 10s ./internal/encoding
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 10s ./internal/encoding
	$(GO) test -run '^$$' -fuzz FuzzProfileReader -fuzztime 10s ./internal/profile

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/logging
	$(GO) run ./examples/profiling
	$(GO) run ./examples/dynamicload
	$(GO) run ./examples/anomaly

clean:
	rm -f results/*.txt test_output.txt bench_output.txt
