package deltapath

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"
)

func loadAnalysis(t *testing.T, path string) *Analysis {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ParseProgram(string(src))
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

// TestRunParallelMatchesSerialReference: the parallel store's aggregated
// counts must equal a single-threaded reference run over the same seeds —
// the profile pipeline may not lose, duplicate, or misattribute a single
// context under concurrency.
func TestRunParallelMatchesSerialReference(t *testing.T) {
	for _, file := range []string{"testdata/tasks.mv", "testdata/recursion.mv", "testdata/shapes.mv"} {
		an := loadAnalysis(t, file)
		seeds := []uint64{0, 1, 2, 3, 4, 5, 6, 7}

		// Serial reference: one session at a time, counts in a plain map.
		expected := make(map[string]uint64)
		var expSkipped uint64
		for _, seed := range seeds {
			_, err := an.Run(seed, func(c Context) {
				rec, err := c.MarshalBinary()
				if err != nil {
					expSkipped++
					return
				}
				expected[string(rec)]++
			})
			if err != nil {
				t.Fatalf("%s seed %d: %v", file, seed, err)
			}
		}

		prof, err := an.RunParallel(seeds, nil)
		if err != nil {
			t.Fatalf("%s: RunParallel: %v", file, err)
		}
		if prof.Skipped() != expSkipped {
			t.Errorf("%s: skipped %d, want %d", file, prof.Skipped(), expSkipped)
		}
		recs := prof.Records()
		if len(recs) != len(expected) {
			t.Fatalf("%s: %d unique records, want %d", file, len(recs), len(expected))
		}
		var total uint64
		for _, r := range recs {
			want, ok := expected[string(r.Key)]
			if !ok {
				t.Fatalf("%s: unexpected record in store", file)
			}
			if r.Count != want {
				t.Fatalf("%s: record count %d, want %d", file, r.Count, want)
			}
			total += r.Count
		}
		if total != prof.Total() {
			t.Fatalf("%s: snapshot total %d != store total %d", file, total, prof.Total())
		}
	}
}

// TestDecodeProfileWorkerEquivalence: the hot-context report must be
// byte-identical whether decoded serially or by a worker pool.
func TestDecodeProfileWorkerEquivalence(t *testing.T) {
	an := loadAnalysis(t, "testdata/tasks.mv")
	prof, err := an.RunParallel([]uint64{0, 1, 2, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := prof.Save(&buf); err != nil {
		t.Fatal(err)
	}

	var baseline *ProfileReport
	for _, workers := range []int{1, 2, 4, 8} {
		rep, err := an.DecodeProfile(bytes.NewReader(buf.Bytes()), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Total != prof.Total() {
			t.Fatalf("workers=%d: report total %d, profile total %d", workers, rep.Total, prof.Total())
		}
		if baseline == nil {
			baseline = rep
			continue
		}
		if !reflect.DeepEqual(rep, baseline) {
			t.Fatalf("workers=%d: report differs from workers=1", workers)
		}
	}
	if len(baseline.Rows) == 0 {
		t.Fatal("empty report")
	}
}

// TestDecodeProfileRefusesDigestMismatch: a profile recorded under one
// program must not decode against another program's analysis.
func TestDecodeProfileRefusesDigestMismatch(t *testing.T) {
	anA := loadAnalysis(t, "testdata/tasks.mv")
	anB := loadAnalysis(t, "testdata/recursion.mv")
	prof, err := anA.RunParallel([]uint64{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := prof.Save(&buf); err != nil {
		t.Fatal(err)
	}
	_, err = anB.DecodeProfile(&buf, 2)
	if err == nil {
		t.Fatal("profile decoded against the wrong analysis")
	}
	// The refusal must name both digests — the profile's (expected) and
	// the analysis's (actual) — exactly as dpdecode surfaces it.
	for _, want := range []string{anA.GraphDigest(), anB.GraphDigest()} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("mismatch error does not name digest %s: %v", want, err)
		}
	}
}

// TestOfflineDecodeProfile: the dprun -save / dpdecode -analysis workflow,
// profile edition — a persisted analysis decodes a .dpp identically to the
// live analysis.
func TestOfflineDecodeProfile(t *testing.T) {
	an := loadAnalysis(t, "testdata/shapes.mv")
	prof, err := an.RunParallel([]uint64{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var dpp, dpa bytes.Buffer
	if err := prof.Save(&dpp); err != nil {
		t.Fatal(err)
	}
	if err := an.SaveAnalysis(&dpa); err != nil {
		t.Fatal(err)
	}
	dec, err := LoadDecoder(&dpa)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := dec.DecodeProfile(bytes.NewReader(dpp.Bytes()), 4)
	if err != nil {
		t.Fatal(err)
	}
	live, err := an.DecodeProfile(bytes.NewReader(dpp.Bytes()), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(offline, live) {
		t.Fatal("offline report differs from live report")
	}
}

// TestProfileCollectMergesChaosRuns: counts from fault-injected sessions
// merge into the same store, and the self-healing protocol keeps every
// recorded context decodable.
func TestProfileCollectMergesChaosRuns(t *testing.T) {
	an := loadAnalysis(t, "testdata/recursion.mv")
	prof := an.NewProfile(0)
	err := prof.Collect([]uint64{3, 4, 5}, func(seed uint64, s *Session) {
		s.EnableChaos(ChaosOptions{Seed: seed, Rate: 0.05})
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Total() == 0 {
		t.Fatal("chaos runs recorded no contexts")
	}
	var buf bytes.Buffer
	if err := prof.Save(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := an.DecodeProfile(&buf, 2)
	if err != nil {
		t.Fatalf("chaos-collected profile failed to decode: %v", err)
	}
	if rep.Total != prof.Total() {
		t.Fatalf("report total %d, profile total %d", rep.Total, prof.Total())
	}
}

// TestProfileReportTop: Top trims deterministically.
func TestProfileReportTop(t *testing.T) {
	rep := &ProfileReport{Rows: []HotContext{
		{Context: "a", Count: 5}, {Context: "b", Count: 3}, {Context: "c", Count: 1},
	}}
	if got := rep.Top(2); len(got) != 2 || got[0].Context != "a" {
		t.Fatalf("Top(2) = %v", got)
	}
	if got := rep.Top(0); len(got) != 3 {
		t.Fatalf("Top(0) = %v", got)
	}
	if got := rep.Top(99); len(got) != 3 {
		t.Fatalf("Top(99) = %v", got)
	}
}
