package deltapath

import (
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"deltapath/internal/instrument"
	"deltapath/internal/minivm"
)

// The epoch differential suite: random interleavings of class loads, calls
// and incremental extensions, with every captured event decoded against its
// recorded epoch and checked frame-exactly against two oracles —
//
//  1. the VM's ground-truth call stack at the emit (analysed frames by
//     name, unanalysed stretches as gaps), and
//  2. a whole-program re-analysis: for each epoch the interleaving
//     published, a fresh Analyze over the program with that epoch's
//     absorbed classes promoted to static, replayed over the *original*
//     program's VM with the same dispatch seed. The replay is
//     step-identical to the incremental run (promotion changes analysis,
//     never dispatch), so event i of the incremental run must decode to
//     exactly what epoch(i)'s oracle decodes for its event i.
//
// Together these certify the tentpole contract: an incrementally extended
// epoch is indistinguishable, context for context, from the analysis a full
// re-run would have produced.

// diffSrc is the interleaving workhorse: three dynamic classes joining two
// dispatch chains at different times, including a subclass-of-dynamic (Y)
// and a class that makes an old site recursive once absorbed (Z calls
// P.tail, which dispatches back into Z.op).
const diffSrc = `
entry P.main
class P {
  method main {
    call P.warm
    load X
    loop 2 { vcall Q.op }
    load Y
    loop 2 { vcall Q.op }
    load Z
    loop 3 { vcall Q.op }
    call P.tail
    emit fin
  }
  method warm { vcall Q.op; emit warm }
  method tail { vcall Q.op }
}
class Q { method op { call S.leaf; emit qop } }
class S { method leaf { emit leaf } }
dynamic class X extends Q { method op { call S.leaf; emit xop } }
dynamic class Y extends X { method op { emit yop } }
dynamic class Z extends Q { method op { call P.tail; emit zop } }
`

// diffEvent is one emit of an interleaved run.
type diffEvent struct {
	decoded string // rendered decode, or "?" when the emit point is unanalysed
	epoch   uint64
	stack   []MethodRef // ground-truth VM stack at the emit
}

// runInterleaved executes prog once, extending by schedule[i] (and adopting)
// right after event i is captured, and returns every event decoded against
// its recorded epoch. absorbedAt records each published epoch's absorbed
// list.
func runInterleaved(t *testing.T, prog *Program, opts Options, seed uint64, schedule map[int][]string) (events []diffEvent, absorbedAt map[uint64][]string) {
	t.Helper()
	an, err := Analyze(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := an.NewSession(seed)
	if err != nil {
		t.Fatal(err)
	}
	absorbedAt = map[uint64][]string{0: nil}
	idx := 0
	_, err = s.Run(func(c Context) {
		ev := diffEvent{decoded: "?", epoch: c.Epoch(), stack: append([]MethodRef(nil), s.VM().Stack()...)}
		if c.known {
			names, derr := an.Decode(c)
			if derr != nil {
				t.Errorf("seed %d event %d: decode: %v", seed, idx, derr)
			}
			ev.decoded = strings.Join(names, " > ")
		}
		events = append(events, ev)
		if classes, ok := schedule[idx]; ok {
			if _, eerr := an.Extend(classes...); eerr != nil {
				t.Errorf("seed %d event %d: Extend(%v): %v", seed, idx, classes, eerr)
			} else {
				s.Adopt()
				absorbedAt[an.Epoch()] = an.Absorbed()
				if verr := an.VerifyEncoding(); verr != nil {
					t.Errorf("seed %d event %d: epoch %d fails verification: %v", seed, idx, an.Epoch(), verr)
				}
			}
		}
		idx++
	})
	if err != nil {
		t.Fatal(err)
	}
	return events, absorbedAt
}

// promote returns prog with the absorbed classes moved to the static set,
// in absorption order — the whole-program oracle's input. Class definitions
// are shared (they are read-only after Normalize).
func promote(prog *Program, absorbed []string) *Program {
	isAbs := make(map[string]bool, len(absorbed))
	for _, name := range absorbed {
		isAbs[name] = true
	}
	out := &Program{Entry: prog.Entry}
	out.Classes = append(out.Classes, prog.Classes...)
	for _, name := range absorbed {
		for _, c := range prog.Dynamic {
			if c.Name == name {
				out.Classes = append(out.Classes, c)
			}
		}
	}
	for _, c := range prog.Dynamic {
		if !isAbs[c.Name] {
			out.Dynamic = append(out.Dynamic, c)
		}
	}
	return out
}

// oracleDecodes replays prog under the whole-program oracle for one
// absorbed set: a fresh Analyze over the promoted program, driving the
// original program's VM (same seed, so the run is step-identical to the
// incremental one) with the oracle's plan. It returns the decode of every
// event.
func oracleDecodes(t *testing.T, prog *Program, absorbed []string, opts Options, seed uint64) []string {
	t.Helper()
	oan, err := Analyze(promote(prog, absorbed), opts)
	if err != nil {
		t.Fatalf("oracle Analyze(absorbed=%v): %v", absorbed, err)
	}
	ep := oan.epoch()
	vm, err := minivm.NewVM(prog, seed)
	if err != nil {
		t.Fatal(err)
	}
	enc := instrument.NewEncoder(ep.plan)
	vm.SetProbes(enc)
	vm.SetInstrumented(ep.plan.InstrumentedMethods())
	vm.MarkAnalyzed(absorbed...)
	var out []string
	vm.OnEmit = func(_ *minivm.VM, m MethodRef, _ string) {
		node, known := ep.build.NodeOf[m]
		if !known {
			out = append(out, "?")
			return
		}
		names, derr := ep.decoder.DecodeNames(enc.State().Snapshot(), node)
		if derr != nil {
			t.Errorf("oracle(absorbed=%v) decode at %s: %v", absorbed, m, derr)
			out = append(out, "!")
			return
		}
		out = append(out, strings.Join(names, " > "))
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEpochDifferential is the randomized differential: many (seed,
// interleaving) pairs, each checked frame-exactly against both oracles.
func TestEpochDifferential(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 10
	}
	progs := map[string]string{"diff": diffSrc, "dynload": readTestdata(t, "testdata/dynload.mv")}
	for name, src := range progs {
		src := src
		t.Run(name, func(t *testing.T) {
			prog := mustParse(t, src)
			var dynNames []string
			for _, c := range prog.Dynamic {
				dynNames = append(dynNames, c.Name)
			}
			for trial := 0; trial < trials; trial++ {
				runDifferentialTrial(t, prog, dynNames, trial)
				if t.Failed() {
					return
				}
			}
		})
	}
}

// runDifferentialTrial derives one random interleaving from the trial
// number, runs it, and checks every event against both oracles.
func runDifferentialTrial(t *testing.T, prog *Program, dynNames []string, trial int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(trial) * 7919))
	seed := uint64(rng.Intn(8))
	opts := Options{}
	// Count the run's events once, un-extended, to place extensions.
	base, err := Analyze(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	baseContexts, err := base.Run(seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	nEvents := len(baseContexts)
	// Random interleaving: absorb the dynamic classes in shuffled order,
	// split into 1..len batches, each batch at a random event index.
	order := append([]string(nil), dynNames...)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	schedule := make(map[int][]string)
	for len(order) > 0 {
		k := 1 + rng.Intn(len(order))
		batch := order[:k]
		order = order[k:]
		at := rng.Intn(nEvents)
		schedule[at] = append(schedule[at], batch...)
	}

	events, absorbedAt := runInterleaved(t, prog, opts, seed, schedule)
	if t.Failed() {
		return
	}
	if len(events) != nEvents {
		t.Fatalf("trial %d: interleaved run emitted %d events, un-extended run %d — executions diverged", trial, len(events), nEvents)
	}

	// Oracle 1: ground truth stacks.
	for i, ev := range events {
		if ev.decoded == "?" {
			continue
		}
		absorbed := absorbedAt[ev.epoch]
		analysedSet := make(map[string]bool, len(absorbed))
		for _, name := range absorbed {
			analysedSet[name] = true
		}
		want := renderStack(ev.stack, func(m MethodRef) bool {
			if dynamicClassOf(prog, m.Class) != nil {
				return analysedSet[m.Class]
			}
			return true
		})
		if ev.decoded != want {
			t.Fatalf("trial %d event %d (epoch %d): decoded\n  %s\nground truth\n  %s",
				trial, i, ev.epoch, ev.decoded, want)
		}
	}

	// Oracle 2: whole-program re-analysis per epoch, frame-exact per event.
	oracles := make(map[uint64][]string)
	for epoch, absorbed := range absorbedAt {
		oracles[epoch] = oracleDecodes(t, prog, absorbed, opts, seed)
		if t.Failed() {
			return
		}
	}
	for i, ev := range events {
		oracle := oracles[ev.epoch]
		if len(oracle) != nEvents {
			t.Fatalf("trial %d: oracle for epoch %d emitted %d events, want %d — replay diverged",
				trial, ev.epoch, len(oracle), nEvents)
		}
		if ev.decoded != oracle[i] {
			t.Fatalf("trial %d event %d (epoch %d, absorbed %v): incremental decodes\n  %s\nwhole-program oracle decodes\n  %s",
				trial, i, ev.epoch, absorbedAt[ev.epoch], ev.decoded, oracle[i])
		}
	}
}

// TestExtendSoak is the long randomized soak ci-local runs under -race
// (make extend-soak): EXTEND_SOAK_TRIALS interleavings, default small so
// the plain test run stays fast.
func TestExtendSoak(t *testing.T) {
	trials := 5
	if s := os.Getenv("EXTEND_SOAK_TRIALS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("EXTEND_SOAK_TRIALS=%q: %v", s, err)
		}
		trials = n
	}
	prog := mustParse(t, diffSrc)
	for trial := 0; trial < trials; trial++ {
		runDifferentialTrial(t, prog, []string{"X", "Y", "Z"}, 1_000_000+trial)
		if t.Failed() {
			return
		}
	}
}
