package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"deltapath/internal/eval"
	"deltapath/internal/workload"
)

// This file is the bench-smoke regression gate: dpbench -compare <file>
// re-measures the experiments recorded in a baseline JSON document (a prior
// "dpbench -json" run, conventionally the newest results/BENCH_*.json) and
// fails when a key metric regressed beyond -tolerance.
//
// The container caveat from results/BENCH_0002.json applies: this suite is
// routinely benchmarked on a 1-CPU box where absolute times are noisy and
// multi-worker scaling is meaningless. The gate therefore (1) compares
// best-of-N measurements on both sides, (2) prefers machine-independent
// *ratios* — the observability overhead (metrics-on / metrics-off) and the
// decode speedup (legacy / compiled), the scale tiers' bytes/node and
// identity/verify verdicts, the extend steps' delta-verify-vs-full
// obligation fraction, and the ingest experiment's group-commit/per-batch
// throughput ratio — over absolute timings, which are gated only for
// encode and intern, and (3) never compares multi-worker speedup rows —
// only the workers=1 intern cost.

// baselineDoc mirrors the slice of the -json document the gate reads.
// Unknown experiments in the file are simply not compared.
type baselineDoc struct {
	Encode  []eval.EncodeRow
	Profile []eval.ProfileRow
	Decode  []eval.DecodeRow
	Fig8    []eval.Fig8Row
	Scale   []eval.ScaleRow
	Extend  []eval.ExtendRow
	Ingest  []eval.IngestRow
	Meta    struct {
		Scale float64
		Bench []string
	}
}

// check is one gated comparison. Values are oriented so that higher is
// worse: ratio = fresh/base for lower-is-better metrics and base/fresh for
// higher-is-better ones; ratio > 1+tolerance flags a regression.
type check struct {
	name        string
	base, fresh float64
	ratio       float64
}

func lowerBetter(name string, base, fresh float64) (check, bool) {
	if base <= 0 || fresh <= 0 {
		return check{}, false // degenerate measurement; nothing to gate
	}
	return check{name: name, base: base, fresh: fresh, ratio: fresh / base}, true
}

func higherBetter(name string, base, fresh float64) (check, bool) {
	if base <= 0 || fresh <= 0 {
		return check{}, false
	}
	return check{name: name, base: base, fresh: fresh, ratio: base / fresh}, true
}

// runCompare executes the gate and exits: 0 when every metric is within
// tolerance, 1 on any regression, 2 on a malformed baseline.
func runCompare(path string, tolerance float64, repeats int) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalCompare(err)
	}
	var base baselineDoc
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "dpbench: -compare %s: %v\n", path, err)
		os.Exit(2)
	}
	if len(base.Encode) == 0 && len(base.Profile) == 0 && len(base.Decode) == 0 &&
		len(base.Fig8) == 0 && len(base.Scale) == 0 && len(base.Extend) == 0 &&
		len(base.Ingest) == 0 {
		fmt.Fprintf(os.Stderr, "dpbench: -compare %s: no comparable experiments (encode/profile/decode/fig8/scale/extend/ingest)\n", path)
		os.Exit(2)
	}
	scale := base.Meta.Scale
	if scale <= 0 {
		scale = 0.1
	}
	suite := suiteFromNames(base.Meta.Bench)
	if repeats < 1 {
		repeats = 1
	}

	var checks []check
	add := func(c check, ok bool) {
		if ok {
			checks = append(checks, c)
		}
	}

	if len(base.Encode) > 0 {
		fresh, err := eval.EncodeOverhead(suite, scale, repeats, nil)
		if err != nil {
			fatalCompare(err)
		}
		freshBy := make(map[string]eval.EncodeRow, len(fresh))
		for _, r := range fresh {
			freshBy[r.Program] = r
		}
		for _, b := range base.Encode {
			f, ok := freshBy[b.Program]
			if !ok {
				continue
			}
			add(lowerBetter("encode "+b.Program+" ns/event (off)", b.NsPerEventOff, f.NsPerEventOff))
			add(lowerBetter("encode "+b.Program+" obs on/off ratio",
				b.NsPerEventOn/b.NsPerEventOff, f.NsPerEventOn/f.NsPerEventOff))
		}
	}

	if len(base.Profile) > 0 {
		baseNs := 0.0
		for _, r := range base.Profile {
			if r.Workers == 1 {
				baseNs = r.NsPerIntern
			}
		}
		best := 0.0
		for i := 0; i < repeats; i++ {
			rows, err := eval.ProfileThroughput(suite, scale, []int{1})
			if err != nil {
				fatalCompare(err)
			}
			if ns := rows[0].NsPerIntern; best == 0 || ns < best {
				best = ns
			}
		}
		add(lowerBetter("profile workers=1 ns/intern", baseNs, best))
	}

	if len(base.Decode) > 0 {
		// Gate only the machine-independent legacy/compiled speedup: absolute
		// ns/context on the 1-CPU container is noise, but the ratio of the two
		// decoders over identical contexts is stable. A pre-speedup baseline
		// (no Speedup field) contributes no checks rather than failing.
		fresh, err := eval.DecodeLatency(suite, scale, 2048, repeats)
		if err != nil {
			fatalCompare(err)
		}
		freshBy := make(map[string]eval.DecodeRow, len(fresh))
		for _, r := range fresh {
			freshBy[r.Program] = r
		}
		for _, b := range base.Decode {
			if f, ok := freshBy[b.Program]; ok {
				add(higherBetter("decode "+b.Program+" compiled speedup", b.Speedup, f.Speedup))
			}
		}
	}

	if len(base.Fig8) > 0 {
		fresh, err := eval.Figure8Workers(suite, scale, repeats, 1)
		if err != nil {
			fatalCompare(err)
		}
		freshBy := make(map[string]eval.Fig8Row, len(fresh))
		for _, r := range fresh {
			freshBy[r.Program] = r
		}
		for _, b := range base.Fig8 {
			f, ok := freshBy[b.Program]
			if !ok {
				continue
			}
			add(higherBetter("fig8 "+b.Program+" DP(wCPT) speed", b.DeltaCPT, f.DeltaCPT))
		}
	}

	if len(base.Scale) > 0 {
		// Scale tiers: only machine-independent facts are gated — the
		// analysis memory budget (bytes/node is an allocation count, not a
		// timing) plus the hard correctness verdicts; absolute tier timings
		// are recorded in the baseline but never compared. Tiers above 10⁵
		// nodes are skipped: re-measuring them is a minutes-scale job that
		// belongs to scale-smoke, not the bench gate.
		byTier := make(map[string]workload.HugeParams)
		for _, p := range workload.HugeTiers(scaleTierFactor(base.Scale)) {
			byTier[p.Name] = p
		}
		for _, b := range base.Scale {
			if b.Nodes > 100_000 || !b.Identical || !b.VerifyClean {
				continue // over-budget tier, or baseline itself not certified
			}
			p, ok := byTier[b.Tier]
			if !ok {
				fmt.Fprintf(os.Stderr, "dpbench: baseline names unknown scale tier %q (re-baseline needed)\n", b.Tier)
				os.Exit(2)
			}
			fresh, err := eval.ScaleCurve([]workload.HugeParams{p}, b.Par, b.DecodeSample)
			if err != nil {
				fatalCompare(err)
			}
			f := fresh[0]
			if !f.Identical || !f.VerifyClean || !f.VerifyIdentical {
				// Not a tolerance question: a divergent engine, an
				// uncertified spec, or a parallel verifier disagreeing with
				// the serial one fails the gate outright.
				checks = append(checks, check{
					name: "scale " + b.Tier + " identity+verify", base: 1, fresh: 0, ratio: math.Inf(1),
				})
				continue
			}
			add(lowerBetter("scale "+b.Tier+" bytes/node", b.BytesPerNode, f.BytesPerNode))
		}
	}

	if len(base.Extend) > 0 {
		// Extend steps: absolute latencies are container noise, but the
		// delta-verify-vs-full proof reuse is a deterministic count for a
		// given program — the fraction of interval obligations the epoch
		// gate re-derived instead of reusing from the previous certificate.
		// A step that certified incrementally in the baseline but fell back
		// to a full proof fresh fails outright: the incremental engine
		// stopped accepting its own certificates.
		fresh, err := eval.ExtendLatency(nil)
		if err != nil {
			fatalCompare(err)
		}
		freshBy := make(map[string]eval.ExtendRow, len(fresh))
		for _, r := range fresh {
			freshBy[r.Program+"/"+r.Class] = r
		}
		for _, b := range base.Extend {
			if !b.VerifyDelta || b.ObligationsTotal == 0 {
				continue // first epoch (no prior certificate) or degenerate
			}
			f, ok := freshBy[b.Program+"/"+b.Class]
			if !ok {
				continue // baseline included -mv extras the gate does not re-run
			}
			step := "extend " + b.Program + "/" + b.Class
			if !f.VerifyDelta || f.ObligationsTotal == 0 {
				checks = append(checks, check{
					name: step + " delta proof", base: 1, fresh: 0, ratio: math.Inf(1),
				})
				continue
			}
			if b.ObligationsChecked == 0 {
				// A fully reused proof has ratio 0, which no tolerance can
				// scale; gate it as an exact count instead.
				if f.ObligationsChecked > 0 {
					checks = append(checks, check{
						name: step + " delta/full obligations", base: 0,
						fresh: float64(f.ObligationsChecked), ratio: math.Inf(1),
					})
				}
				continue
			}
			add(lowerBetter(step+" delta/full obligations",
				float64(b.ObligationsChecked)/float64(b.ObligationsTotal),
				float64(f.ObligationsChecked)/float64(f.ObligationsTotal)))
		}
	}

	if len(base.Ingest) > 0 {
		// Ingest: absolute batches/sec is storage-bound, but the
		// group-commit/per-batch throughput ratio at a given agent count is
		// a property of the commit policy — gate that. Best-of-N on the
		// fresh side, like the timing gates.
		// The 1-agent row is recorded but never gated: a solo pusher gets
		// one fsync per batch under either policy, so its "ratio" is two
		// measurements of the same thing — pure disk noise.
		var counts []int
		for _, b := range base.Ingest {
			if b.Agents > 1 && b.Speedup > 0 {
				counts = append(counts, b.Agents)
			}
		}
		if len(counts) > 0 {
			bestBy := make(map[int]float64)
			fresh, err := eval.IngestThroughput(scale, repeats, counts)
			if err != nil {
				fatalCompare(err)
			}
			for _, f := range fresh {
				if f.Speedup > bestBy[f.Agents] {
					bestBy[f.Agents] = f.Speedup
				}
			}
			for _, b := range base.Ingest {
				if b.Agents <= 1 || b.Speedup <= 0 {
					continue
				}
				add(higherBetter(fmt.Sprintf("ingest agents=%d group-commit speedup", b.Agents),
					b.Speedup, bestBy[b.Agents]))
			}
		}
	}

	regressions := 0
	fmt.Printf("bench-smoke gate: %s vs fresh best-of-%d (tolerance %.0f%%)\n",
		path, repeats, tolerance*100)
	fmt.Printf("%-42s %12s %12s %8s  %s\n", "metric", "baseline", "fresh", "ratio", "verdict")
	for _, c := range checks {
		verdict := "ok"
		if c.ratio > 1+tolerance {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Printf("%-42s %12.2f %12.2f %8.3f  %s\n", c.name, c.base, c.fresh, c.ratio, verdict)
	}
	if regressions > 0 {
		fmt.Printf("%d of %d metrics regressed beyond %.0f%%\n", regressions, len(checks), tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("all %d metrics within tolerance\n", len(checks))
}

// suiteFromNames resolves the baseline's benchmark subset (empty = full
// suite). Unknown names are fatal: a renamed benchmark needs re-baselining,
// not a silently shrunken gate.
func suiteFromNames(names []string) []workload.Params {
	if len(names) == 0 {
		return workload.Suite()
	}
	out := make([]workload.Params, 0, len(names))
	for _, name := range names {
		p, ok := workload.ByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "dpbench: baseline names unknown benchmark %q (re-baseline needed)\n", name)
			os.Exit(2)
		}
		out = append(out, p)
	}
	return out
}

// scaleTierFactor recovers the HugeTiers scale factor a baseline's scale
// rows were generated with, from the first tier's name ("huge-<n>k" targets
// n×1000 nodes; the tier base is 100k).
func scaleTierFactor(rows []eval.ScaleRow) float64 {
	if len(rows) == 0 {
		return 1
	}
	name := strings.TrimSuffix(strings.TrimPrefix(rows[0].Tier, "huge-"), "k")
	n, err := strconv.Atoi(name)
	if err != nil || n <= 0 {
		return 1
	}
	return float64(n) * 1000 / 100_000
}

func fatalCompare(err error) {
	fmt.Fprintln(os.Stderr, "dpbench: compare:", err)
	os.Exit(1)
}
