// Command dpbench regenerates the paper's evaluation: Table 1 (static
// program characteristics), Figure 8 (normalized execution speed of PCC
// versus DeltaPath with and without call path tracking), and Table 2
// (dynamic program characteristics), over the fifteen synthetic
// SPECjvm2008-shaped benchmarks.
//
// Beyond the paper's tables, the profile experiment measures the concurrent
// profile pipeline: intern throughput of the sharded context store at 1, 2,
// 4, and 8 workers over a corpus collected from the suite (fixed total
// work, so the speedup column is the classic scaling ratio).
//
// Usage:
//
//	dpbench -experiment table1|fig8|table2|decode|profile|encode|graph|extend|ingest|all
//	        [-scale 0.2] [-repeats 3] [-workers 1]
//	        [-bench compress,sunflow] [-json]
//	dpbench -experiment scale [-scale 1.0] [-workers 4] [-json]
//	dpbench -compare results/BENCH_0003.json [-tolerance 0.25] [-repeats 3]
//
// Scale multiplies workload loop-trip counts: 1.0 is the full configured
// run (minutes), 0.1 a quick pass. -experiment accepts a comma-separated
// list. -bench restricts to a comma-separated subset of benchmark names.
// -json emits one machine-readable JSON document holding every requested
// experiment plus a meta block (CPU count, GOOS, GOARCH, benchmark subset,
// and — when the encode experiment ran — the aggregated observability
// metrics) instead of the formatted tables.
//
// The graph experiment compares CHA against RTA call-graph construction
// (nodes, edges, targets per site, anchors, encoding bits, and the CHA−RTA
// deltas) over the suite plus the curated programs matched by -mv
// (default examples/*.mv — the generated suite has no dead code, so the
// curated programs carry the precision witnesses).
//
// The decode experiment measures offline decode throughput through both
// data paths — the legacy map-based reference decoder and the compiled
// flat tables (encoding.Compile) — reporting ns/context for each, the
// legacy/compiled speedup, compiled-path frames/s, and compiled
// steady-state allocations per decode (expected 0).
//
// The scale experiment sweeps the huge-graph scalability tiers
// (workload.HugeTiers, 10⁵–10⁶ nodes at -scale 1.0): per tier it measures
// parallel and serial analysis latency, spec-compile latency, the analysis
// memory budget (peak bytes, bytes/node), and compiled decode ns/context,
// while proving the level-parallel engine byte-identical to the serial
// reference and running the soundness verifier. It is opt-in — excluded
// from -experiment all — because the top tier allocates gigabytes.
//
// The extend experiment measures incremental encoding (Analysis.Extend):
// per absorbed dynamic class, the delta-analysis latency against the
// whole-program re-analysis it replaces, how much of the graph the delta
// dirtied, and fresh-session hazard pushes before and after the absorption
// — the steady-state run-time rent an unanalysed class charges.
//
// The ingest experiment measures dprofiled's write fast path: for 1, 4,
// and 8 concurrent agents pushing to one tenant over HTTP, the acked-batch
// throughput and ack-latency quantiles under the group-commit WAL versus
// per-batch fsync, plus the fsyncs each policy issued. The gated metric is
// the group/per-batch throughput ratio at each agent count.
//
// The encode experiment measures the observability layer's hot-path cost:
// whole-run ns per probe event with metrics off (the nil-sink default) and
// on. -compare is the bench-smoke regression gate built on that output: it
// re-measures the experiments recorded in a baseline -json document (see
// compare.go for the gated metrics and the 1-CPU caveat) and exits 1 on
// any metric more than -tolerance worse than the baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"deltapath/internal/eval"
	"deltapath/internal/lang"
	"deltapath/internal/obs"
	"deltapath/internal/workload"
)

// loadPrograms parses every .mv program the glob matches, named by base
// filename. A glob matching nothing is not an error — the graph experiment
// then runs over the generated suite alone.
func loadPrograms(glob string) ([]eval.NamedProgram, error) {
	paths, err := filepath.Glob(glob)
	if err != nil {
		return nil, fmt.Errorf("-mv %q: %w", glob, err)
	}
	var out []eval.NamedProgram
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		prog, err := lang.Parse(string(src))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		out = append(out, eval.NamedProgram{Name: filepath.Base(p), Prog: prog})
	}
	return out, nil
}

func main() {
	experiment := flag.String("experiment", "all", "comma-separated subset of table1, fig8, table2, decode, profile, encode, graph, extend, ingest; or all; scale is opt-in (huge graphs)")
	scale := flag.Float64("scale", 0.2, "workload scale factor (1.0 = full runs)")
	repeats := flag.Int("repeats", 3, "throughput repetitions per configuration (fig8, decode, encode, -compare)")
	workers := flag.Int("workers", 1, "concurrent benchmark worker threads (fig8)")
	benchList := flag.String("bench", "", "comma-separated benchmark subset (default: all 15)")
	asJSON := flag.Bool("json", false, "emit JSON rows instead of formatted tables")
	compare := flag.String("compare", "", "baseline -json document to regression-gate against (see results/BENCH_*.json)")
	tolerance := flag.Float64("tolerance", 0.25, "with -compare: allowed relative regression per metric")
	mvGlob := flag.String("mv", "examples/*.mv", "glob of curated .mv programs the graph experiment adds to the suite")
	flag.Parse()

	if *compare != "" {
		runCompare(*compare, *tolerance, *repeats)
		return
	}

	suite := workload.Suite()
	if *benchList != "" {
		var filtered []workload.Params
		for _, name := range strings.Split(*benchList, ",") {
			p, ok := workload.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "dpbench: unknown benchmark %q\n", name)
				os.Exit(2)
			}
			filtered = append(filtered, p)
		}
		suite = filtered
	}

	wanted := make(map[string]bool)
	for _, name := range strings.Split(*experiment, ",") {
		wanted[strings.TrimSpace(name)] = true
	}
	run := func(name string, f func() error) {
		if !wanted["all"] && !wanted[name] {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	// With -json, every experiment accumulates into one document so the
	// output is a single valid JSON object regardless of -experiment.
	doc := map[string]any{}
	emit := func(name string, rows any, rendered string) error {
		if !*asJSON {
			fmt.Println(rendered)
			return nil
		}
		doc[name] = rows
		return nil
	}

	run("table1", func() error {
		rows, err := eval.Table1(suite)
		if err != nil {
			return err
		}
		return emit("table1", rows, eval.RenderTable1(rows))
	})
	run("fig8", func() error {
		rows, err := eval.Figure8Workers(suite, *scale, *repeats, *workers)
		if err != nil {
			return err
		}
		return emit("fig8", rows, eval.RenderFigure8(rows))
	})
	run("table2", func() error {
		rows, err := eval.Table2(suite, *scale)
		if err != nil {
			return err
		}
		return emit("table2", rows, eval.RenderTable2(rows))
	})
	run("decode", func() error {
		rows, err := eval.DecodeLatency(suite, *scale, 2048, *repeats)
		if err != nil {
			return err
		}
		return emit("decode", rows, eval.RenderDecodeLatency(rows))
	})
	run("profile", func() error {
		rows, err := eval.ProfileThroughput(suite, *scale, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		return emit("profile", rows, eval.RenderProfile(rows))
	})
	// The generated workload suite alone cannot show a CHA-vs-RTA delta —
	// its coverage pass makes every generated method reachable — so the
	// graph experiment folds in the curated example programs, which carry
	// dead spawns and dynamic-only call paths on purpose.
	run("graph", func() error {
		extra, err := loadPrograms(*mvGlob)
		if err != nil {
			return err
		}
		rows, err := eval.GraphPrecision(suite, extra)
		if err != nil {
			return err
		}
		return emit("graph", rows, eval.RenderGraph(rows))
	})
	// The ingest experiment boots real dprofiled servers over temp durable
	// state, so its absolute numbers are storage-bound; the gated metric is
	// the group-commit/per-batch throughput ratio.
	run("ingest", func() error {
		rows, err := eval.IngestThroughput(*scale, *repeats, []int{1, 4, 8})
		if err != nil {
			return err
		}
		return emit("ingest", rows, eval.RenderIngest(rows))
	})
	// The extend experiment needs programs with dynamic classes: the
	// built-in corpus plus any -mv programs that declare them.
	run("extend", func() error {
		extra, err := loadPrograms(*mvGlob)
		if err != nil {
			return err
		}
		rows, err := eval.ExtendLatency(extra)
		if err != nil {
			return err
		}
		return emit("extend", rows, eval.RenderExtend(rows))
	})
	// The scale experiment sweeps the huge-graph tiers (workload.HugeTiers):
	// at -scale 1.0 the top tier is a million-node, multi-million-edge
	// graph, so it is opt-in — never part of -experiment all. -scale
	// multiplies the tier node counts; -workers sets the parallel engine's
	// worker count (minimum 2, so the level-parallel schedule always runs
	// and is proven byte-identical to the serial reference).
	if wanted["scale"] {
		scaleWorkers := *workers
		if scaleWorkers < 2 {
			scaleWorkers = 2
		}
		rows, err := eval.ScaleCurve(workload.HugeTiers(*scale), scaleWorkers, 256)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: scale: %v\n", err)
			os.Exit(1)
		}
		failed := false
		for _, r := range rows {
			if !r.Identical || !r.VerifyClean || !r.VerifyIdentical {
				failed = true
			}
		}
		if err := emit("scale", rows, eval.RenderScale(rows)); err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: scale: %v\n", err)
			os.Exit(1)
		}
		if failed {
			fmt.Fprintln(os.Stderr, "dpbench: scale: engine divergence or verification finding (see rows)")
			os.Exit(1)
		}
	}

	// The encode experiment's metrics-on runs aggregate into reg, which
	// -json surfaces as meta.metrics — the observability layer observing
	// its own benchmark.
	reg := obs.NewRegistry()
	run("encode", func() error {
		rows, err := eval.EncodeOverhead(suite, *scale, *repeats, reg)
		if err != nil {
			return err
		}
		return emit("encode", rows, eval.RenderEncode(rows))
	})

	if *asJSON {
		names := make([]string, 0, len(suite))
		for _, p := range suite {
			names = append(names, p.Name)
		}
		meta := map[string]any{
			"num_cpu":    runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"scale":      *scale,
			"bench":      names,
		}
		if metrics := reg.Snapshot(); len(metrics) > 0 {
			meta["metrics"] = metrics
		}
		doc["meta"] = meta
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpbench:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
	}
}
