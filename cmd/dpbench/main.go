// Command dpbench regenerates the paper's evaluation: Table 1 (static
// program characteristics), Figure 8 (normalized execution speed of PCC
// versus DeltaPath with and without call path tracking), and Table 2
// (dynamic program characteristics), over the fifteen synthetic
// SPECjvm2008-shaped benchmarks.
//
// Usage:
//
//	dpbench -experiment table1|fig8|table2|decode|all [-scale 0.2]
//	        [-repeats 3] [-workers 1] [-bench compress,sunflow] [-json]
//
// Scale multiplies workload loop-trip counts: 1.0 is the full configured
// run (minutes), 0.1 a quick pass. -bench restricts to a comma-separated
// subset of benchmark names. -json emits machine-readable rows instead of
// the formatted tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"deltapath/internal/eval"
	"deltapath/internal/workload"
)

func main() {
	experiment := flag.String("experiment", "all", "table1, fig8, table2, or all")
	scale := flag.Float64("scale", 0.2, "workload scale factor (1.0 = full runs)")
	repeats := flag.Int("repeats", 3, "throughput repetitions per configuration (fig8)")
	workers := flag.Int("workers", 1, "concurrent benchmark worker threads (fig8)")
	benchList := flag.String("bench", "", "comma-separated benchmark subset (default: all 15)")
	asJSON := flag.Bool("json", false, "emit JSON rows instead of formatted tables")
	flag.Parse()

	suite := workload.Suite()
	if *benchList != "" {
		var filtered []workload.Params
		for _, name := range strings.Split(*benchList, ",") {
			p, ok := workload.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "dpbench: unknown benchmark %q\n", name)
				os.Exit(2)
			}
			filtered = append(filtered, p)
		}
		suite = filtered
	}

	run := func(name string, f func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	emit := func(name string, rows any, rendered string) error {
		if !*asJSON {
			fmt.Println(rendered)
			return nil
		}
		out, err := json.MarshalIndent(map[string]any{name: rows}, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}

	run("table1", func() error {
		rows, err := eval.Table1(suite)
		if err != nil {
			return err
		}
		return emit("table1", rows, eval.RenderTable1(rows))
	})
	run("fig8", func() error {
		rows, err := eval.Figure8Workers(suite, *scale, *repeats, *workers)
		if err != nil {
			return err
		}
		return emit("fig8", rows, eval.RenderFigure8(rows))
	})
	run("table2", func() error {
		rows, err := eval.Table2(suite, *scale)
		if err != nil {
			return err
		}
		return emit("table2", rows, eval.RenderTable2(rows))
	})
	run("decode", func() error {
		rows, err := eval.DecodeLatency(suite, *scale, 2048)
		if err != nil {
			return err
		}
		return emit("decode", rows, eval.RenderDecodeLatency(rows))
	})
}
