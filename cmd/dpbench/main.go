// Command dpbench regenerates the paper's evaluation: Table 1 (static
// program characteristics), Figure 8 (normalized execution speed of PCC
// versus DeltaPath with and without call path tracking), and Table 2
// (dynamic program characteristics), over the fifteen synthetic
// SPECjvm2008-shaped benchmarks.
//
// Beyond the paper's tables, the profile experiment measures the concurrent
// profile pipeline: intern throughput of the sharded context store at 1, 2,
// 4, and 8 workers over a corpus collected from the suite (fixed total
// work, so the speedup column is the classic scaling ratio).
//
// Usage:
//
//	dpbench -experiment table1|fig8|table2|decode|profile|all [-scale 0.2]
//	        [-repeats 3] [-workers 1] [-bench compress,sunflow] [-json]
//
// Scale multiplies workload loop-trip counts: 1.0 is the full configured
// run (minutes), 0.1 a quick pass. -bench restricts to a comma-separated
// subset of benchmark names. -json emits one machine-readable JSON document
// holding every requested experiment plus a meta block (CPU count, GOOS,
// GOARCH) instead of the formatted tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"deltapath/internal/eval"
	"deltapath/internal/workload"
)

func main() {
	experiment := flag.String("experiment", "all", "table1, fig8, table2, decode, profile, or all")
	scale := flag.Float64("scale", 0.2, "workload scale factor (1.0 = full runs)")
	repeats := flag.Int("repeats", 3, "throughput repetitions per configuration (fig8)")
	workers := flag.Int("workers", 1, "concurrent benchmark worker threads (fig8)")
	benchList := flag.String("bench", "", "comma-separated benchmark subset (default: all 15)")
	asJSON := flag.Bool("json", false, "emit JSON rows instead of formatted tables")
	flag.Parse()

	suite := workload.Suite()
	if *benchList != "" {
		var filtered []workload.Params
		for _, name := range strings.Split(*benchList, ",") {
			p, ok := workload.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "dpbench: unknown benchmark %q\n", name)
				os.Exit(2)
			}
			filtered = append(filtered, p)
		}
		suite = filtered
	}

	run := func(name string, f func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	// With -json, every experiment accumulates into one document so the
	// output is a single valid JSON object regardless of -experiment.
	doc := map[string]any{}
	emit := func(name string, rows any, rendered string) error {
		if !*asJSON {
			fmt.Println(rendered)
			return nil
		}
		doc[name] = rows
		return nil
	}

	run("table1", func() error {
		rows, err := eval.Table1(suite)
		if err != nil {
			return err
		}
		return emit("table1", rows, eval.RenderTable1(rows))
	})
	run("fig8", func() error {
		rows, err := eval.Figure8Workers(suite, *scale, *repeats, *workers)
		if err != nil {
			return err
		}
		return emit("fig8", rows, eval.RenderFigure8(rows))
	})
	run("table2", func() error {
		rows, err := eval.Table2(suite, *scale)
		if err != nil {
			return err
		}
		return emit("table2", rows, eval.RenderTable2(rows))
	})
	run("decode", func() error {
		rows, err := eval.DecodeLatency(suite, *scale, 2048)
		if err != nil {
			return err
		}
		return emit("decode", rows, eval.RenderDecodeLatency(rows))
	})
	run("profile", func() error {
		rows, err := eval.ProfileThroughput(suite, *scale, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		return emit("profile", rows, eval.RenderProfile(rows))
	})

	if *asJSON {
		doc["meta"] = map[string]any{
			"num_cpu":    runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"scale":      *scale,
		}
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpbench:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
	}
}
