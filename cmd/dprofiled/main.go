// Command dprofiled is the fault-tolerant multi-tenant profile ingestion
// daemon: it accepts streaming .dpp pushes from many concurrent agents
// (dprun -push, or anything speaking the ingest protocol), aggregates them
// into per-analysis stores, and survives crashes, overload, and corrupt
// input without losing an acknowledged record.
//
// Usage:
//
//	dprofiled -data DIR -analysis name=app.dpa [-analysis other=lib.dpa]
//	          [-addr 127.0.0.1:7077] [-queue-depth N] [-wal-max-bytes N]
//	          [-memtable-max-bytes N] [-compact-min-segments N]
//	          [-no-group-commit] [-pprof-addr ADDR]
//	          [-drain-timeout D] [-retry-after SECS] [-max-body N]
//
// Each -analysis flag registers one tenant: a name for queries and a
// persisted .dpa analysis whose graph digest routes ingest. Durable state
// lives under DIR/<name>/ (WAL + segment manifest) and is recovered on
// start; state recorded under a different analysis is refused, never
// silently replayed. A legacy monolithic snapshot.dps is migrated into the
// segment layout on first start.
//
// Endpoints:
//
//	POST /ingest                      .dpp batch in, JSON ack out
//	                                  (429 + Retry-After under overload,
//	                                  503 while draining)
//	GET  /top?tenant=N&n=K            hottest K decoded contexts
//	GET  /decode?tenant=N&record=HEX  decode one context record
//	GET  /profile?tenant=N            aggregate streamed back as .dpp
//	GET  /query?tenant=N[&top=K][&class=C]  decoded rows as NDJSON,
//	                                  streamed with O(segments) memory
//	GET  /healthz                     per-tenant counters, JSON
//	GET  /metrics                     Prometheus text (dp_server_*)
//
// -pprof-addr starts net/http/pprof on a separate listener (off by
// default; keep it on a loopback or otherwise private address).
//
// SIGINT/SIGTERM shut down gracefully: intake is refused, queued batches
// drain under -drain-timeout, and every tenant flushes a final snapshot.
// SIGKILL is survivable by design — that is what the WAL is for.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"deltapath/internal/obs"
	"deltapath/internal/server"
)

// analysisFlags collects repeated -analysis name=path pairs.
type analysisFlags []struct{ name, path string }

func (a *analysisFlags) String() string {
	var parts []string
	for _, t := range *a {
		parts = append(parts, t.name+"="+t.path)
	}
	return strings.Join(parts, ",")
}

func (a *analysisFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*a = append(*a, struct{ name, path string }{name, path})
	return nil
}

func main() {
	var analyses analysisFlags
	addr := flag.String("addr", "127.0.0.1:7077", "listen address (use :0 for an ephemeral port)")
	data := flag.String("data", "", "durable state directory (required)")
	flag.Var(&analyses, "analysis", "tenant as name=path.dpa (repeatable, at least one)")
	queueDepth := flag.Int("queue-depth", 64, "per-tenant ingest queue bound in batches")
	walMax := flag.Int64("wal-max-bytes", 1<<20, "WAL size that triggers memtable flush + truncate")
	memMax := flag.Int64("memtable-max-bytes", 4<<20, "memtable size that triggers a segment flush")
	compactMin := flag.Int("compact-min-segments", 4, "live segment count that triggers compaction")
	noGroupCommit := flag.Bool("no-group-commit", false, "fsync every batch individually (benchmark baseline)")
	pprofAddr := flag.String("pprof-addr", "", "serve /debug/pprof on this address (empty = off)")
	drain := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain budget")
	retryAfter := flag.Int("retry-after", 1, "Retry-After seconds advertised on 429/503")
	maxBody := flag.Int64("max-body", 32<<20, "largest accepted ingest body in bytes")
	flag.Parse()
	if *data == "" || len(analyses) == 0 {
		fmt.Fprintln(os.Stderr, "usage: dprofiled -data DIR -analysis name=path.dpa [...]")
		os.Exit(2)
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dprofiled: "+format+"\n", args...)
	}
	s, err := server.New(server.Config{
		DataDir:            *data,
		QueueDepth:         *queueDepth,
		WALMaxBytes:        *walMax,
		MemtableMaxBytes:   *memMax,
		CompactMinSegments: *compactMin,
		NoGroupCommit:      *noGroupCommit,
		RetryAfterSeconds:  *retryAfter,
		MaxBodyBytes:       *maxBody,
		Registry:           obs.NewRegistry(),
		Logf:               logf,
	})
	if err != nil {
		fatal(err)
	}
	if *pprofAddr != "" {
		// net/http/pprof registers on the default mux; serve that mux on
		// its own listener so profiling stays off the ingest address.
		pl, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatal(err)
		}
		logf("pprof listening on %s", pl.Addr())
		go http.Serve(pl, nil)
	}
	for _, a := range analyses {
		f, err := os.Open(a.path)
		if err != nil {
			fatal(err)
		}
		health, err := s.AddTenant(a.name, f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("dprofiled: tenant %s (%s): %d records recovered, %d replayed from WAL\n",
			a.name, health.Digest, health.Records, health.Replayed)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The soak harness and scripts parse this line to find an ephemeral
	// port; keep its shape stable.
	fmt.Printf("dprofiled: listening on %s\n", l.Addr())

	httpServer := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpServer.Serve(l) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logf("caught %v, draining (budget %v)", sig, *drain)
	case err := <-errc:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		logf("drain: %v", err)
	}
	if err := httpServer.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logf("http shutdown: %v", err)
	}
	logf("stopped")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dprofiled:", err)
	os.Exit(1)
}
