// Command dprun executes a minivm program under DeltaPath encoding and
// prints, for every emit point, the captured encoding and its decoded
// calling context — demonstrating the precise, instant decoding that is the
// paper's headline capability.
//
// Usage:
//
//	dprun [-app] [-seed N] [-unique] [-record log.bin] [-save a.dpa]
//	      [-extend Cls,...] [-profile out.dpp] [-runs N]
//	      [-chaos] [-chaos-rate P] program.mv
//
// With -unique, each distinct context is printed once with its occurrence
// count (a minimal context-sensitive profile). With -record, binary context
// records (4-byte little-endian length + record) are written to the given
// file for offline decoding with dpdecode — the event-logging workflow.
//
// With -profile, the program is executed -runs times concurrently (seeds
// seed..seed+runs-1), every emitted context is interned into a sharded
// store, and the aggregate streams to the given .dpp file — decode it with
// "dpdecode -profile". Combined with -chaos, every run injects faults and
// self-heals, and the counts of all runs merge into one profile.
//
// With -push URL, the aggregated profile is pushed to a dprofiled server
// instead of (or in addition to) being written to a file: records are
// chunked into idempotent batches of -push-batch and delivered with
// retry/backoff, surviving server restarts and backpressure sheds. The
// server routes the push by the profile's graph digest, so the matching
// analysis must be registered there (dprofiled -analysis).
//
// With -extend, the named dynamic classes are absorbed into the analysis
// before the run (Analysis.Extend — the incremental late-loading path):
// each absorption publishes a new verified epoch, the run executes against
// the final epoch hazard-free, and -save/-profile stamp their outputs with
// it so offline decoding routes to the matching snapshot.
//
// With -chaos, the run injects seeded probe faults (dropped events, bit
// flips, stack truncation, unknown call sites; -seed drives the fault
// stream) and heals via the stack-walk resync protocol; the health counters
// — corruptions detected, resyncs, dropped events, partial decodes — are
// reported at the end. Every printed context is exact despite the faults.
//
// With -metrics, the runtime observability registry is enabled and dumped
// to stderr when the run finishes: encoder additions, anchor pushes/pops,
// CPT hazard pushes, decode cache hits, and so on (-metrics-format selects
// json or prom; see DESIGN.md §11 for the metric table). With -trace, the
// most recent probe/encoder events (ring capacity -trace-cap) are dumped to
// stderr as one "seq=… kind=… site=… ctx=…" line each — the post-mortem
// view of what the encoder last did.
package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"deltapath"
	"deltapath/internal/server/agentclient"
)

func main() {
	app := flag.Bool("app", false, "encoding-application setting (exclude library classes)")
	seed := flag.Uint64("seed", 1, "virtual-dispatch seed")
	unique := flag.Bool("unique", false, "aggregate identical contexts with counts")
	record := flag.String("record", "", "write binary context records to this file instead of decoding")
	save := flag.String("save", "", "persist the analysis to this file (pairs with -record; decode later via dpdecode -analysis)")
	extend := flag.String("extend", "", "comma-separated dynamic classes to absorb (Analysis.Extend) before running; each publishes a new epoch")
	profileOut := flag.String("profile", "", "aggregate contexts into a sharded store and stream the profile to this .dpp file")
	push := flag.String("push", "", "push the aggregated profile to a dprofiled server at this base URL (implies profile collection; pairs with -profile to also keep the file)")
	pushBatch := flag.Int("push-batch", 512, "with -push: records per ingest batch")
	runs := flag.Int("runs", 1, "with -profile: number of concurrent runs to merge (seeds seed..seed+runs-1)")
	chaosOn := flag.Bool("chaos", false, "inject seeded probe faults and heal via stack-walk resync")
	chaosRate := flag.Float64("chaos-rate", 0.002, "per-probe-event fault probability under -chaos")
	metricsOn := flag.Bool("metrics", false, "enable the observability registry and dump it to stderr at exit")
	metricsFormat := flag.String("metrics-format", "prom", "metrics dump format: prom or json")
	traceOn := flag.Bool("trace", false, "enable the event tracer and dump the ring to stderr at exit (implies -metrics)")
	traceCap := flag.Int("trace-cap", 0, "trace ring capacity (rounded up to a power of two; 0 = default 4096)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dprun [-app] [-seed N] [-unique] [-profile out.dpp] [-runs N] [-chaos] [-chaos-rate P] program.mv")
		os.Exit(2)
	}
	if *runs < 1 {
		fmt.Fprintln(os.Stderr, "dprun: -runs must be >= 1")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := deltapath.ParseProgram(string(src))
	if err != nil {
		fatal(err)
	}
	an, err := deltapath.Analyze(prog, deltapath.Options{ApplicationOnly: *app})
	if err != nil {
		fatal(err)
	}
	switch *metricsFormat {
	case "prom", "json":
	default:
		fmt.Fprintln(os.Stderr, "dprun: -metrics-format must be prom or json")
		os.Exit(2)
	}
	if *metricsOn {
		an.EnableMetrics()
	}
	if *extend != "" {
		for _, class := range strings.Split(*extend, ",") {
			class = strings.TrimSpace(class)
			stats, err := an.Extend(class)
			if err != nil {
				fatal(fmt.Errorf("-extend %s: %w", class, err))
			}
			fmt.Fprintf(os.Stderr, "extended: epoch %d absorbs %s (%d/%d nodes dirty, %d anchors recomputed)\n",
				stats.Epoch, strings.Join(stats.NewClasses, ","),
				stats.Core.DirtyNodes, stats.Core.TotalNodes, stats.Core.RecomputedAnchors)
		}
	}
	if *traceOn {
		an.EnableTracing(*traceCap)
	}
	// dumpObs writes the metrics and/or trace to stderr; registered here so
	// every exit path below (decode loop, -record, -profile) reports.
	dumpObs := func() {
		if *metricsOn {
			var err error
			if *metricsFormat == "json" {
				err = an.Metrics().WriteJSON(os.Stderr)
			} else {
				err = an.Metrics().WritePrometheus(os.Stderr)
			}
			if err != nil {
				fatal(err)
			}
		}
		if *traceOn {
			if err := an.WriteTrace(os.Stderr); err != nil {
				fatal(err)
			}
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := an.SaveAnalysis(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("analysis saved to %s\n", *save)
	}

	defer dumpObs()

	if *profileOut != "" || *push != "" {
		runProfile(an, *profileOut, *push, *pushBatch, *seed, *runs, *chaosOn, *chaosRate)
		return
	}

	var journal *os.File
	if *record != "" {
		journal, err = os.Create(*record)
		if err != nil {
			fatal(err)
		}
		defer journal.Close()
	}
	sess, err := an.NewSession(*seed)
	if err != nil {
		fatal(err)
	}
	if *chaosOn {
		sess.EnableChaos(deltapath.ChaosOptions{Seed: *seed, Rate: *chaosRate})
	}

	counts := make(map[string]int)
	sample := make(map[string]deltapath.Context)
	recorded, skipped := 0, 0
	_, err = sess.Run(func(c deltapath.Context) {
		if journal != nil {
			rec, rerr := c.MarshalBinary()
			if rerr != nil {
				skipped++ // emit inside unanalysed code: not encodable
				return
			}
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(len(rec)))
			if _, werr := journal.Write(hdr[:]); werr != nil {
				fatal(werr)
			}
			if _, werr := journal.Write(rec); werr != nil {
				fatal(werr)
			}
			recorded++
			return
		}
		key := c.Key()
		counts[key]++
		if *unique {
			if _, seen := sample[key]; !seen {
				sample[key] = c
			}
			return
		}
		names, derr := an.Decode(c)
		if derr != nil {
			fmt.Printf("[%s] %s: <undecodable: %v>\n", c.Tag, c.At, derr)
			return
		}
		fmt.Printf("[%s] id=%d pieces=%d  %s\n", c.Tag, c.ID(), c.StackDepth(), strings.Join(names, " > "))
	})
	if err != nil {
		fatal(err)
	}
	if *chaosOn {
		h := sess.Health()
		fmt.Printf("chaos: %d probe events, %d faults injected (%d events dropped)\n",
			h.ProbeEvents, h.FaultsInjected, h.DroppedEvents)
		fmt.Printf("health: %d corruptions detected, %d resyncs, %d partial decodes\n",
			h.CorruptionsDetected, h.Resyncs, h.PartialDecodes)
	}
	if journal != nil {
		fmt.Printf("recorded %d contexts to %s (%d unanalysed emits skipped)\n", recorded, *record, skipped)
		return
	}

	if *unique {
		keys := make([]string, 0, len(sample))
		for k := range sample {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return counts[keys[i]] > counts[keys[j]] })
		for _, k := range keys {
			names, derr := an.Decode(sample[k])
			if derr != nil {
				fmt.Printf("%8d  <undecodable: %v>\n", counts[k], derr)
				continue
			}
			fmt.Printf("%8d  %s\n", counts[k], strings.Join(names, " > "))
		}
		fmt.Printf("%d unique contexts, %d total\n", len(sample), total(counts))
	}
}

// runProfile is the -profile/-push path: runs concurrent sessions
// aggregating into one sharded store, then streams the .dpp profile to
// out and/or pushes it to a dprofiled server.
func runProfile(an *deltapath.Analysis, out, push string, pushBatch int, seed uint64, runs int, chaosOn bool, chaosRate float64) {
	seeds := make([]uint64, runs)
	for i := range seeds {
		seeds[i] = seed + uint64(i)
	}
	prof := an.NewProfile(0)
	var configure func(uint64, *deltapath.Session)
	var mu sync.Mutex
	var sessions []*deltapath.Session
	if chaosOn {
		configure = func(seed uint64, s *deltapath.Session) {
			s.EnableChaos(deltapath.ChaosOptions{Seed: seed, Rate: chaosRate})
			mu.Lock()
			sessions = append(sessions, s)
			mu.Unlock()
		}
	}
	if err := prof.Collect(seeds, configure, nil); err != nil {
		fatal(err)
	}
	if chaosOn {
		var h deltapath.Health
		for _, s := range sessions {
			sh := s.Health()
			h.ProbeEvents += sh.ProbeEvents
			h.FaultsInjected += sh.FaultsInjected
			h.DroppedEvents += sh.DroppedEvents
			h.CorruptionsDetected += sh.CorruptionsDetected
			h.Resyncs += sh.Resyncs
			h.PartialDecodes += sh.PartialDecodes
		}
		fmt.Printf("chaos: %d runs, %d probe events, %d faults injected (%d events dropped)\n",
			runs, h.ProbeEvents, h.FaultsInjected, h.DroppedEvents)
		fmt.Printf("health: %d corruptions detected, %d resyncs, %d partial decodes\n",
			h.CorruptionsDetected, h.Resyncs, h.PartialDecodes)
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		if err := prof.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("profile: %d unique contexts, %d samples over %d runs (%d unanalysed emits skipped) -> %s\n",
			prof.Unique(), prof.Total(), runs, prof.Skipped(), out)
	}
	if push != "" {
		var buf bytes.Buffer
		if err := prof.Save(&buf); err != nil {
			fatal(err)
		}
		client, err := agentclient.New(agentclient.Config{
			URL:          push,
			BatchRecords: pushBatch,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "dprun: push: "+format+"\n", args...)
			},
		})
		if err != nil {
			fatal(err)
		}
		stats, err := client.Push(context.Background(), buf.Bytes())
		if err != nil {
			fatal(fmt.Errorf("push: %w (after %d acked batches)", err, stats.Batches))
		}
		fmt.Printf("push: %d batches acked (%d records, %d duplicates) to %s, %d retries (%d sheds)\n",
			stats.Batches, stats.Records, stats.Duplicates, push, stats.Retries, stats.Shed429)
	}
}

func total(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dprun:", err)
	os.Exit(1)
}
