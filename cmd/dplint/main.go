// Command dplint statically verifies encoding soundness: it proves, from
// the analysis alone, that every context ID the instrumentation can
// produce decodes to exactly one calling context — the property the test
// suites only observe dynamically. See internal/verify for the invariant
// list (interval disjointness per Algorithm 1, anchored recursion and
// capacity per Algorithm 2, SID closure per Section 4.1).
//
// Inputs are .mv programs (the full analysis pipeline runs, then the
// result is verified — a certificate for "what Analyze would give you")
// and/or .dpa analysis files (the persisted artifact is verified as-is —
// a certificate for "what this file will decode"). Reports are emitted in
// input order, one per file, as text or JSON (-json); both forms are
// byte-deterministic for a given input.
//
// Exit status: 0 — every input verified clean; 1 — at least one finding
// (including unloadable .dpa artifacts, which are corrupt by definition);
// 2 — usage error or unreadable/unparsable .mv input.
//
// Usage:
//
//	dplint [-json] [-app] [-graph cha|rta] [-maxid N] input.mv analysis.dpa ...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/lang"
	"deltapath/internal/rta"
	"deltapath/internal/verify"
)

func main() {
	asJSON := flag.Bool("json", false, "emit one JSON document holding every report")
	app := flag.Bool("app", false, "for .mv inputs: encoding-application setting (exclude library classes)")
	graph := flag.String("graph", "cha", "for .mv inputs: call-graph builder, cha or rta")
	maxID := flag.Uint64("maxid", 0, "encoding integer limit the capacity check enforces (0 = 2^63-1)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: dplint [-json] [-app] [-graph cha|rta] [-maxid N] input.mv analysis.dpa ...")
		os.Exit(2)
	}
	if *graph != "cha" && *graph != "rta" {
		fmt.Fprintf(os.Stderr, "dplint: unknown -graph %q (want cha or rta)\n", *graph)
		os.Exit(2)
	}

	opts := verify.Options{MaxID: *maxID}
	reports := make([]*verify.Report, 0, flag.NArg())
	for _, path := range flag.Args() {
		if strings.HasSuffix(path, ".mv") {
			reports = append(reports, checkProgram(path, *app, *graph, *maxID, opts))
		} else {
			reports = append(reports, verify.CheckFile(path, opts))
		}
	}

	findings := 0
	if *asJSON {
		doc := struct {
			Reports []*verify.Report `json:"reports"`
		}{reports}
		out, err := json.MarshalIndent(&doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		for _, r := range reports {
			findings += len(r.Findings)
		}
	} else {
		for _, r := range reports {
			fmt.Print(r.Text())
			findings += len(r.Findings)
		}
	}
	if findings > 0 {
		os.Exit(1)
	}
}

// checkProgram runs the analysis pipeline exactly as the public Analyze
// does (KeepUnreachable instrumentation graph, CPT always on) and verifies
// the result.
func checkProgram(path string, app bool, graph string, maxID uint64, opts verify.Options) *verify.Report {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	setting := cha.EncodingAll
	if app {
		setting = cha.EncodingApplication
	}
	buildOpts := cha.Options{Setting: setting, KeepUnreachable: true}
	var build *cha.Result
	if graph == "rta" {
		build, err = rta.Build(prog, buildOpts)
	} else {
		build, err = cha.Build(prog, buildOpts)
	}
	if err != nil {
		fatal(err)
	}
	res, err := core.Encode(build.Graph, core.Options{MaxID: maxID})
	if err != nil {
		fatal(err)
	}
	rep := verify.Check(res.Spec, cpt.Compute(build.Graph), opts)
	rep.Source = path
	return rep
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dplint:", err)
	os.Exit(2)
}
