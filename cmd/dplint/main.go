// Command dplint statically verifies encoding soundness: it proves, from
// the analysis alone, that every context ID the instrumentation can
// produce decodes to exactly one calling context — the property the test
// suites only observe dynamically. See internal/verify for the invariant
// list (interval disjointness per Algorithm 1, anchored recursion and
// capacity per Algorithm 2, SID closure per Section 4.1).
//
// Inputs are .mv programs (the full analysis pipeline runs, then the
// result is verified — a certificate for "what Analyze would give you")
// and/or .dpa analysis files (the persisted artifact is verified as-is —
// a certificate for "what this file will decode"). Reports are emitted in
// input order, one per file, as text or JSON (-json); both forms are
// byte-deterministic for a given input. The JSON form additionally carries
// the verify wall time and the per-section obligation counts (how many
// proof obligations each invariant section discharged) — timings are
// machine-dependent, counts are not.
//
// -workers N proves territory obligations on N goroutines; reports are
// byte-identical to serial for every worker count. -delta re-certifies
// each clean input through the incremental engine (verify.CheckDelta
// against the input's own certificate, nothing dirty) and reports the
// reuse counters — a self-test that the certificate round-trips.
//
// Exit status: 0 — every input verified clean; 1 — at least one finding
// (including unloadable .dpa artifacts, which are corrupt by definition);
// 2 — usage error or unreadable/unparsable .mv input. The -workers and
// -delta flags never change the exit code for a given input set.
//
// Usage:
//
//	dplint [-json] [-app] [-graph cha|rta] [-maxid N] [-workers N] [-delta] input.mv analysis.dpa ...
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"deltapath/internal/analysisio"
	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
	"deltapath/internal/lang"
	"deltapath/internal/rta"
	"deltapath/internal/verify"
)

// sectionCounts is the per-section proof-obligation breakdown of one
// report: how many obligations each invariant section discharged. Derived
// from the verifier's statistics, so it is byte-deterministic.
type sectionCounts struct {
	// Structure counts graph entities cross-checked against the spec maps.
	Structure int `json:"structure"`
	// PushEdges counts push-kind/recursion-anchoring obligations.
	PushEdges int `json:"push_edges"`
	// VirtualSites counts dispatch-agreement obligations.
	VirtualSites int `json:"virtual_sites"`
	// Territories counts per-piece-start proof obligations.
	Territories int `json:"territories"`
	// Intervals counts in-edge interval disjointness obligations.
	Intervals int `json:"intervals"`
	// CoverageNodes counts territory-membership obligations.
	CoverageNodes int `json:"coverage_nodes"`
	// CPTSites counts SID-closure obligations.
	CPTSites int `json:"cpt_sites"`
}

func sectionsOf(rep *verify.Report) sectionCounts {
	return sectionCounts{
		Structure:     rep.Stats.Nodes + rep.Stats.Edges,
		PushEdges:     rep.Stats.PushEdges,
		VirtualSites:  rep.Stats.VirtualSites,
		Territories:   rep.Stats.PieceStarts,
		Intervals:     rep.Stats.IntervalsChecked,
		CoverageNodes: rep.Stats.Nodes,
		CPTSites:      rep.Stats.Sites,
	}
}

// reportDoc wraps one verification report with the CLI-level measurements.
type reportDoc struct {
	*verify.Report
	// VerifyMs is wall time of the verification (including the -delta
	// re-certification when enabled). Machine-dependent; everything else
	// in the document is deterministic.
	VerifyMs float64       `json:"verify_ms"`
	Sections sectionCounts `json:"sections"`
}

func main() {
	asJSON := flag.Bool("json", false, "emit one JSON document holding every report")
	app := flag.Bool("app", false, "for .mv inputs: encoding-application setting (exclude library classes)")
	graph := flag.String("graph", "cha", "for .mv inputs: call-graph builder, cha or rta")
	maxID := flag.Uint64("maxid", 0, "encoding integer limit the capacity check enforces (0 = 2^63-1)")
	workers := flag.Int("workers", 0, "goroutines proving territory obligations (0/1 = serial; reports are byte-identical)")
	delta := flag.Bool("delta", false, "re-certify clean inputs through the incremental engine and report proof reuse")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: dplint [-json] [-app] [-graph cha|rta] [-maxid N] [-workers N] [-delta] input.mv analysis.dpa ...")
		os.Exit(2)
	}
	if *graph != "cha" && *graph != "rta" {
		fmt.Fprintf(os.Stderr, "dplint: unknown -graph %q (want cha or rta)\n", *graph)
		os.Exit(2)
	}

	opts := verify.Options{MaxID: *maxID, Workers: *workers}
	docs := make([]reportDoc, 0, flag.NArg())
	for _, path := range flag.Args() {
		start := time.Now()
		var rep *verify.Report
		var spec *encoding.Spec
		var plan *cpt.Plan
		if strings.HasSuffix(path, ".mv") {
			rep, spec, plan = checkProgram(path, *app, *graph, *maxID, opts)
		} else {
			rep, spec, plan = checkArtifact(path, opts)
		}
		if *delta {
			rep = recertify(rep, spec, plan, opts)
		}
		docs = append(docs, reportDoc{
			Report:   rep,
			VerifyMs: float64(time.Since(start).Nanoseconds()) / 1e6,
			Sections: sectionsOf(rep),
		})
	}

	findings := 0
	if *asJSON {
		doc := struct {
			Reports []reportDoc `json:"reports"`
		}{docs}
		out, err := json.MarshalIndent(&doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		for _, d := range docs {
			findings += len(d.Findings)
		}
	} else {
		for _, d := range docs {
			fmt.Print(d.Text())
			if *delta && d.Delta != nil {
				fmt.Printf("  delta recertify: %d/%d territories reused, %d/%d interval obligations re-derived\n",
					d.Delta.ReusedTerritories,
					d.Delta.ReusedTerritories+d.Delta.DirtyTerritories,
					d.Delta.ObligationsChecked, d.Delta.ObligationsTotal)
			}
			findings += len(d.Findings)
		}
	}
	if findings > 0 {
		os.Exit(1)
	}
}

// recertify runs the incremental engine against the report's own
// certificate with an empty dirty set: every territory must be reused and
// the verdict must not change. A refusal is reported as a finding — the
// certificate failed to round-trip — so the exit-code contract is
// preserved (clean inputs stay 0, defective inputs stay 1).
func recertify(rep *verify.Report, spec *encoding.Spec, plan *cpt.Plan, opts verify.Options) *verify.Report {
	if !rep.Clean() || rep.Certificate == nil || spec == nil {
		return rep // nothing to reuse: defective inputs keep their findings
	}
	drep, err := verify.CheckDelta(rep.Certificate, spec, plan, nil, opts)
	if err != nil {
		rep.Findings = append(rep.Findings, verify.Diagnostic{
			Check:  "delta",
			Detail: fmt.Sprintf("re-certification against own certificate refused: %v", err),
		})
		return rep
	}
	drep.Source = rep.Source
	return drep
}

// checkProgram runs the analysis pipeline exactly as the public Analyze
// does (KeepUnreachable instrumentation graph, CPT always on) and verifies
// the result.
func checkProgram(path string, app bool, graph string, maxID uint64, opts verify.Options) (*verify.Report, *encoding.Spec, *cpt.Plan) {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	setting := cha.EncodingAll
	if app {
		setting = cha.EncodingApplication
	}
	buildOpts := cha.Options{Setting: setting, KeepUnreachable: true}
	var build *cha.Result
	if graph == "rta" {
		build, err = rta.Build(prog, buildOpts)
	} else {
		build, err = cha.Build(prog, buildOpts)
	}
	if err != nil {
		fatal(err)
	}
	res, err := core.Encode(build.Graph, core.Options{MaxID: maxID})
	if err != nil {
		fatal(err)
	}
	plan := cpt.Compute(build.Graph)
	rep := verify.Check(res.Spec, plan, opts)
	rep.Source = path
	return rep, res.Spec, plan
}

// checkArtifact verifies a .dpa analysis file as persisted, keeping the
// loaded bundle so -delta can re-certify it. An unloadable file yields a
// "load" finding, exactly like verify.CheckFile.
func checkArtifact(path string, opts verify.Options) (*verify.Report, *encoding.Spec, *cpt.Plan) {
	data, err := os.ReadFile(path)
	if err != nil {
		return &verify.Report{Source: path, Findings: []verify.Diagnostic{{Check: "load", Detail: err.Error()}}}, nil, nil
	}
	bundle, err := analysisio.Load(bytes.NewReader(data))
	if err != nil {
		return &verify.Report{Source: path, Findings: []verify.Diagnostic{{Check: "load", Detail: err.Error()}}}, nil, nil
	}
	rep := verify.CheckBundle(bundle, opts)
	rep.Source = path
	return rep, bundle.Spec, bundle.CPT
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dplint:", err)
	os.Exit(2)
}
