// Command dpencode runs the DeltaPath static analysis on a minivm program
// and prints the analysis products: the call graph summary, per-site
// addition values, per-node ICC values, anchors, and call-path-tracking
// SIDs. It is the inspection tool for understanding what the encoding
// algorithm decided about a program.
//
// Usage:
//
//	dpencode [-app] [-graph cha|rta] [-maxid N] [-dot] [-verbose] program.mv
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"deltapath/internal/callgraph"
	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/lang"
	"deltapath/internal/rta"
)

func main() {
	app := flag.Bool("app", false, "encoding-application setting (exclude library classes)")
	graph := flag.String("graph", "cha", "call-graph builder: cha (class hierarchy) or rta (entry-rooted reachability)")
	maxID := flag.Uint64("maxid", 0, "encoding integer limit (0 = 2^63-1)")
	dot := flag.Bool("dot", false, "print the call graph in Graphviz dot format and exit")
	verbose := flag.Bool("verbose", false, "print per-site addition values and per-node ICCs")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dpencode [-app] [-graph cha|rta] [-maxid N] [-dot] [-verbose] program.mv")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	setting := cha.EncodingAll
	if *app {
		setting = cha.EncodingApplication
	}
	var build *cha.Result
	switch *graph {
	case "cha":
		build, err = cha.Build(prog, cha.Options{Setting: setting})
	case "rta":
		build, err = rta.Build(prog, cha.Options{Setting: setting})
	default:
		fmt.Fprintf(os.Stderr, "dpencode: unknown -graph %q (want cha or rta)\n", *graph)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	g := build.Graph
	if *dot {
		fmt.Print(g.DOT())
		return
	}
	res, err := core.Encode(g, core.Options{MaxID: *maxID})
	if err != nil {
		fatal(err)
	}
	est, bits, err := core.EstimateSpace(g)
	if err != nil {
		fatal(err)
	}
	plan := cpt.Compute(g)

	fmt.Printf("setting:            %s\n", setting)
	fmt.Printf("graph builder:      %s\n", *graph)
	fmt.Printf("call graph:         %d nodes, %d edges, %d call sites (%d virtual)\n",
		g.NumNodes(), g.NumEdges(), g.NumSites(), g.NumVirtualSites())
	fmt.Printf("encoding space:     %s (%d bits) without overflow anchors\n", core.FormatSpace(est), bits)
	fmt.Printf("max encoding ID:    %d (with anchors, limit %d)\n", res.MaxID, effLimit(*maxID))
	fmt.Printf("overflow anchors:   %d", len(res.OverflowAnchors))
	for _, a := range res.OverflowAnchors {
		fmt.Printf(" %s", g.Name(a))
	}
	fmt.Println()
	fmt.Printf("piece-start nodes:  %d (entry + recursion targets + anchors)\n", len(res.PieceStarts))
	fmt.Printf("restarts:           %d\n", res.Restarts)
	fmt.Printf("CPT SID sets:       %d over %d nodes\n", plan.NumSets, g.NumNodes())

	if *verbose {
		fmt.Println("\naddition values (non-zero):")
		sites := g.Sites()
		sort.Slice(sites, func(i, j int) bool {
			if sites[i].Caller != sites[j].Caller {
				return sites[i].Caller < sites[j].Caller
			}
			return sites[i].Label < sites[j].Label
		})
		for _, s := range sites {
			if av := res.Spec.SiteAV[s]; av != 0 {
				fmt.Printf("  %s@%d  +%d  (%d targets)\n", g.Name(s.Caller), s.Label, av, len(g.SiteTargets(s)))
			}
		}
		fmt.Println("\nICC values:")
		for _, n := range g.Nodes() {
			if m := res.ICC[n]; len(m) > 0 {
				fmt.Printf("  %s:", g.Name(n))
				anchors := make([]callgraph.NodeID, 0, len(m))
				for r := range m {
					anchors = append(anchors, r)
				}
				sort.Slice(anchors, func(i, j int) bool { return anchors[i] < anchors[j] })
				for _, r := range anchors {
					fmt.Printf(" [%s]=%d", g.Name(r), m[r])
				}
				fmt.Println()
			}
		}
	}
}

func effLimit(v uint64) uint64 {
	if v == 0 {
		return 1<<63 - 1
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpencode:", err)
	os.Exit(1)
}
