package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles dplint-go into a temp dir and returns the binary
// path.
func buildTool(t *testing.T) string {
	t.Helper()
	tool := filepath.Join(t.TempDir(), "dplint-go")
	cmd := exec.Command("go", "build", "-o", tool, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return tool
}

// TestVettoolProtocol drives the real `go vet -vettool=` integration both
// ways: green over this repository's own profile and obs packages, red
// over a scratch module seeding one violation per analyzer. Skipped under
// -short — it shells out to the go tool.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and runs go vet")
	}
	tool := buildTool(t)

	t.Run("green-on-repo", func(t *testing.T) {
		cmd := exec.Command("go", "vet", "-vettool="+tool,
			"./internal/profile", "./internal/obs", ".")
		cmd.Dir = filepath.Join("..", "..")
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("vettool flagged the repo:\n%s", out)
		}
	})

	t.Run("red-on-violations", func(t *testing.T) {
		mod := t.TempDir()
		write := func(rel, src string) {
			t.Helper()
			path := filepath.Join(mod, rel)
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		write("go.mod", "module example.com/lintmod\n\ngo 1.22\n")
		// The obs-sink violation: inline resolution on the event path.
		write("hot.go", `package lintmod

type registry struct{}
type counter struct{}

func (registry) Counter(name string) counter { return counter{} }
func (counter) Inc()                         {}

func hot(reg registry) {
	reg.Counter("x").Inc()
}
`)
		// The shard-lock violation, inside a package the rule scopes to.
		write("internal/profile/bad.go", `package profile

import "sync"

type shard struct{ mu sync.Mutex }

func bad(sh *shard) {
	sh.mu.Lock()
	sh.mu.Unlock()
}
`)
		cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
		cmd.Dir = mod
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		err := cmd.Run()
		if err == nil {
			t.Fatalf("go vet passed over seeded violations:\n%s", out.String())
		}
		for _, want := range []string{"obssink", "profilelock"} {
			if !strings.Contains(out.String(), want) {
				t.Errorf("vet output missing %s finding:\n%s", want, out.String())
			}
		}
	})
}
