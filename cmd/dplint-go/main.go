// Command dplint-go runs the project's custom invariant analyzers
// (internal/lint: obssink, profilelock, magicbytes) as a `go vet` plugin:
//
//	go build -o bin/dplint-go ./cmd/dplint-go
//	go vet -vettool=$PWD/bin/dplint-go ./...
//
// It speaks the vet unit-checker protocol by hand — the build environment
// pins zero dependencies, so golang.org/x/tools/go/analysis/unitchecker is
// not available. The protocol, as cmd/go drives it:
//
//   - `dplint-go -V=full` prints a version line ending in a content hash
//     of the executable; cmd/go folds it into its action cache key so a
//     rebuilt tool invalidates cached vet results.
//   - `dplint-go -flags` prints a JSON array describing the tool's flags;
//     this tool has none, so it prints [].
//   - `dplint-go <unit>.cfg` analyzes one package: the cfg file is JSON
//     holding the package's import path and file list. Findings go to
//     stderr as file:line:col lines and the exit status is nonzero, which
//     cmd/go reports as a vet failure.
//
// The analyzers are purely syntactic, so the tool ignores the cfg's type
// and fact plumbing: it writes an empty facts file at VetxOutput (cmd/go
// expects the file to exist) and never reads PackageVetx. Packages marked
// VetxOnly (dependencies, vetted only for facts) and standard-library
// packages are skipped outright.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"deltapath/internal/lint"
)

func main() {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]
	if len(args) != 1 {
		fmt.Fprintf(os.Stderr, "usage: %s -V=full | -flags | <unit>.cfg\n", progname)
		fmt.Fprintf(os.Stderr, "run it via: go vet -vettool=%s ./...\n", progname)
		os.Exit(2)
	}
	switch args[0] {
	case "-V=full":
		printVersion(progname)
		return
	case "-flags":
		// No tool-specific flags: cmd/go will pass only the cfg path.
		fmt.Println("[]")
		return
	}
	if !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "%s: expected a .cfg file, got %q (invoke via go vet -vettool)\n", progname, args[0])
		os.Exit(2)
	}
	findings, err := runUnit(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%s\n", f)
		}
		os.Exit(1)
	}
}

// printVersion emits the `-V=full` line cmd/go hashes into its cache key.
// The format mirrors the stock vet tool: name, "version", a build note,
// and a buildID derived from the executable bytes, so editing the
// analyzers and rebuilding busts cached vet verdicts.
func printVersion(progname string) {
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

// vetConfig is the subset of cmd/go's vet config this tool consumes. The
// full config also carries compiler, import, and export-data plumbing for
// type-aware tools; the syntactic analyzers need none of it.
type vetConfig struct {
	ImportPath string
	GoFiles    []string
	Standard   map[string]bool
	VetxOnly   bool
	VetxOutput string
}

func runUnit(cfgPath string) ([]lint.Finding, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("%s: %w", cfgPath, err)
	}
	// cmd/go requires the facts file to exist after a successful run;
	// write it before any early return.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	// Dependencies are vetted only for facts this tool doesn't produce,
	// and the standard library is out of scope for project invariants.
	if cfg.VetxOnly || cfg.Standard[cfg.ImportPath] {
		return nil, nil
	}
	var findings []lint.Finding
	for _, path := range cfg.GoFiles {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		f, err := lint.ParseFile(path, cfg.ImportPath, src)
		if err != nil {
			// cmd/go hands the tool only files it could build a package
			// from; a parse error here still shouldn't crash the vet run.
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		findings = append(findings, lint.Check(f, lint.All())...)
	}
	return findings, nil
}
