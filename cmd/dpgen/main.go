// Command dpgen materializes one of the synthetic SPECjvm2008-shaped
// benchmark programs as a .mv source file, so the exact programs behind
// Table 1/Figure 8/Table 2 can be inspected, modified, and fed to dpencode,
// dprun, and dpdecode.
//
// Usage:
//
//	dpgen -bench compress [-scale 0.1] [-o compress.mv]
//	dpgen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"deltapath/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (see -list)")
	scale := flag.Float64("scale", 1.0, "loop-trip scale factor")
	out := flag.String("o", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list available benchmarks and exit")
	flag.Parse()

	if *list {
		for _, p := range workload.Suite() {
			fmt.Printf("%-22s layers=%-3d libClasses=%-5d appClasses=%-4d virtual=%.2f\n",
				p.Name, p.Layers, p.LibClasses, p.AppClasses, p.VirtualFrac)
		}
		return
	}
	p, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "dpgen: unknown benchmark %q (use -list)\n", *bench)
		os.Exit(2)
	}
	prog, err := p.Scale(*scale).Generate()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpgen:", err)
		os.Exit(1)
	}
	src := prog.String()
	if *out == "" {
		fmt.Print(src)
		return
	}
	if err := os.WriteFile(*out, []byte(src), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "dpgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *out, len(src))
}
