// Command dpdecode decodes binary context records produced by
// "dprun -record": the offline half of the event-logging workflow. The log
// carries only integer-sized encodings; dpdecode re-runs the static
// analysis on the same program (it is deterministic) and prints the exact
// calling context of every record.
//
// Usage:
//
//	dpdecode [-app] [-unique] [-partial] program.mv log.bin
//	dpdecode -analysis saved.dpa [-unique] [-partial] log.bin
//	dpdecode -profile [-workers N] [-top N] program.mv profile.dpp
//	dpdecode -profile -analysis saved.dpa [-workers N] [-top N] profile.dpp
//
// In the first form the program is re-analysed (deterministically); the
// options must match the recording run. In the second form a persisted
// analysis file (dprun -save) is used — no program needed; the file carries
// a digest of the call graph it was built over, and loading refuses a file
// whose digest does not match its own payload (torn write, version skew).
//
// With -profile, the input is a .dpp profile (dprun -profile) instead of a
// record log: the records are decoded by a -workers pool and printed as a
// hot-context report — count-descending, deterministic regardless of worker
// count — optionally trimmed to the top -top rows. A profile recorded over
// a different program is refused by the graph digest embedded in the .dpp
// header.
//
// All decoding runs through the compiled flat-table decoder
// (encoding.Compile): precomputed CSR in-edge rows and territory bitsets,
// shared lock-free across workers, with per-worker reusable frame buffers.
//
// A corrupt record fails with a distinct exit code per corruption class, so
// pipelines can triage without parsing messages:
//
//	1  generic error (I/O, malformed file)
//	2  usage
//	3  corrupt encoding (structural: bad nodes, bad piece kinds, no convergence)
//	4  no matching in-edge (ID does not correspond to any path)
//	5  residual ID at piece start (additions do not sum to a valid path)
//
// With -partial, corrupt records do not fail the run: each decodes to its
// longest decodable suffix behind an explicit "..." gap (best-effort mode),
// and the number of partial decodes is reported at the end.
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"deltapath"
)

func main() {
	app := flag.Bool("app", false, "encoding-application setting (must match the recording run)")
	unique := flag.Bool("unique", false, "aggregate identical contexts with counts")
	analysisFile := flag.String("analysis", "", "persisted analysis file (replaces the program argument)")
	partial := flag.Bool("partial", false, "best-effort mode: decode corrupt records to their longest decodable suffix")
	profileIn := flag.Bool("profile", false, "input is a .dpp profile (dprun -profile): print a hot-context report")
	workers := flag.Int("workers", 4, "with -profile: decode worker pool size")
	top := flag.Int("top", 0, "with -profile: print only the N hottest contexts (0 = all)")
	flag.Parse()
	if *workers < 1 {
		fmt.Fprintln(os.Stderr, "dpdecode: -workers must be >= 1")
		os.Exit(2)
	}

	var decode func([]byte) ([]string, error)
	var decodePartial func([]byte) ([]string, bool, error)
	var decodeProfile func(io.Reader, int) (*deltapath.ProfileReport, error)
	var logPath string
	switch {
	case *analysisFile != "" && flag.NArg() == 1:
		af, err := os.Open(*analysisFile)
		if err != nil {
			fatal(err)
		}
		dec, err := deltapath.LoadDecoder(af)
		af.Close()
		if err != nil {
			fatal(err)
		}
		if ep := dec.Epoch(); ep > 0 {
			fmt.Fprintf(os.Stderr, "analysis epoch %d (extended snapshot)\n", ep)
		}
		decode = dec.DecodeBytes
		decodePartial = dec.DecodeBytesBestEffort
		decodeProfile = dec.DecodeProfile
		logPath = flag.Arg(0)
	case *analysisFile == "" && flag.NArg() == 2:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		prog, err := deltapath.ParseProgram(string(src))
		if err != nil {
			fatal(err)
		}
		an, err := deltapath.Analyze(prog, deltapath.Options{ApplicationOnly: *app})
		if err != nil {
			fatal(err)
		}
		decode = an.DecodeBytes
		decodePartial = an.DecodeBytesBestEffort
		decodeProfile = an.DecodeProfile
		logPath = flag.Arg(1)
	default:
		fmt.Fprintln(os.Stderr, "usage: dpdecode [-app] [-unique] [-partial] program.mv log.bin")
		fmt.Fprintln(os.Stderr, "       dpdecode -analysis saved.dpa [-unique] [-partial] log.bin")
		fmt.Fprintln(os.Stderr, "       dpdecode -profile [-workers N] [-top N] program.mv profile.dpp")
		os.Exit(2)
	}
	f, err := os.Open(logPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	if *profileIn {
		rep, err := decodeProfile(f, *workers)
		if err != nil {
			fatal(err)
		}
		rows := rep.Top(*top)
		for _, row := range rows {
			fmt.Printf("%8d  %s\n", row.Count, row.Context)
		}
		if *top > 0 && len(rep.Rows) > len(rows) {
			fmt.Fprintf(os.Stderr, "decoded %d records: %d contexts, %d samples (top %d shown)\n",
				rep.Records, len(rep.Rows), rep.Total, len(rows))
			return
		}
		fmt.Fprintf(os.Stderr, "decoded %d records: %d contexts, %d samples\n",
			rep.Records, len(rep.Rows), rep.Total)
		return
	}

	counts := make(map[string]int)
	n, partials := 0, 0
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				break
			}
			fatal(fmt.Errorf("record %d: %w", n, err))
		}
		size := binary.LittleEndian.Uint32(hdr[:])
		if size > 1<<20 {
			fatal(fmt.Errorf("record %d: implausible size %d", n, size))
		}
		rec := make([]byte, size)
		if _, err := io.ReadFull(f, rec); err != nil {
			fatal(fmt.Errorf("record %d: %w", n, err))
		}
		n++
		var names []string
		if *partial {
			var complete bool
			names, complete, err = decodePartial(rec)
			if err != nil {
				fatal(fmt.Errorf("record %d: %w", n, err))
			}
			if !complete {
				partials++
			}
		} else {
			names, err = decode(rec)
			if err != nil {
				fatalDecode(fmt.Errorf("record %d: %w", n, err))
			}
		}
		ctx := strings.Join(names, " > ")
		if *unique {
			counts[ctx]++
		} else {
			fmt.Println(ctx)
		}
	}
	if *unique {
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return counts[keys[i]] > counts[keys[j]] })
		for _, k := range keys {
			fmt.Printf("%8d  %s\n", counts[k], k)
		}
	}
	if *partial && partials > 0 {
		fmt.Fprintf(os.Stderr, "decoded %d records (%d partial)\n", n, partials)
		return
	}
	fmt.Fprintf(os.Stderr, "decoded %d records\n", n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpdecode:", err)
	os.Exit(1)
}

// fatalDecode exits with a corruption-class-specific code so pipelines can
// triage corrupt logs without parsing error text.
func fatalDecode(err error) {
	fmt.Fprintln(os.Stderr, "dpdecode:", err)
	switch {
	case errors.Is(err, deltapath.ErrNoMatchingEdge):
		fmt.Fprintln(os.Stderr, "dpdecode: the record's ID matches no path under this analysis — wrong analysis file, or a corrupted record (retry with -partial to salvage a suffix)")
		os.Exit(4)
	case errors.Is(err, deltapath.ErrResidualID):
		fmt.Fprintln(os.Stderr, "dpdecode: the record's additions do not sum to a valid path — likely a bit flip in the ID (retry with -partial to salvage a suffix)")
		os.Exit(5)
	case errors.Is(err, deltapath.ErrCorruptEncoding):
		fmt.Fprintln(os.Stderr, "dpdecode: the record is structurally corrupt (retry with -partial to salvage a suffix)")
		os.Exit(3)
	}
	os.Exit(1)
}
