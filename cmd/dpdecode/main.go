// Command dpdecode decodes binary context records produced by
// "dprun -record": the offline half of the event-logging workflow. The log
// carries only integer-sized encodings; dpdecode re-runs the static
// analysis on the same program (it is deterministic) and prints the exact
// calling context of every record.
//
// Usage:
//
//	dpdecode [-app] [-unique] program.mv log.bin
//	dpdecode -analysis saved.dpa [-unique] log.bin
//
// In the first form the program is re-analysed (deterministically); the
// options must match the recording run. In the second form a persisted
// analysis file (dpencode -save) is used — no program needed.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"deltapath"
)

func main() {
	app := flag.Bool("app", false, "encoding-application setting (must match the recording run)")
	unique := flag.Bool("unique", false, "aggregate identical contexts with counts")
	analysisFile := flag.String("analysis", "", "persisted analysis file (replaces the program argument)")
	flag.Parse()

	var decode func([]byte) ([]string, error)
	var logPath string
	switch {
	case *analysisFile != "" && flag.NArg() == 1:
		af, err := os.Open(*analysisFile)
		if err != nil {
			fatal(err)
		}
		dec, err := deltapath.LoadDecoder(af)
		af.Close()
		if err != nil {
			fatal(err)
		}
		decode = dec.DecodeBytes
		logPath = flag.Arg(0)
	case *analysisFile == "" && flag.NArg() == 2:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		prog, err := deltapath.ParseProgram(string(src))
		if err != nil {
			fatal(err)
		}
		an, err := deltapath.Analyze(prog, deltapath.Options{ApplicationOnly: *app})
		if err != nil {
			fatal(err)
		}
		decode = an.DecodeBytes
		logPath = flag.Arg(1)
	default:
		fmt.Fprintln(os.Stderr, "usage: dpdecode [-app] [-unique] program.mv log.bin")
		fmt.Fprintln(os.Stderr, "       dpdecode -analysis saved.dpa [-unique] log.bin")
		os.Exit(2)
	}
	f, err := os.Open(logPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	counts := make(map[string]int)
	n := 0
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				break
			}
			fatal(fmt.Errorf("record %d: %w", n, err))
		}
		size := binary.LittleEndian.Uint32(hdr[:])
		if size > 1<<20 {
			fatal(fmt.Errorf("record %d: implausible size %d", n, size))
		}
		rec := make([]byte, size)
		if _, err := io.ReadFull(f, rec); err != nil {
			fatal(fmt.Errorf("record %d: %w", n, err))
		}
		n++
		names, err := decode(rec)
		if err != nil {
			fatal(fmt.Errorf("record %d: %w", n, err))
		}
		ctx := strings.Join(names, " > ")
		if *unique {
			counts[ctx]++
		} else {
			fmt.Println(ctx)
		}
	}
	if *unique {
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return counts[keys[i]] > counts[keys[j]] })
		for _, k := range keys {
			fmt.Printf("%8d  %s\n", counts[k], k)
		}
	}
	fmt.Fprintf(os.Stderr, "decoded %d records\n", n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpdecode:", err)
	os.Exit(1)
}
