// Benchmarks regenerating the paper's evaluation artifacts (Section 6) and
// the ablations called out in DESIGN.md.
//
// Every table and figure has a bench that produces its rows:
//
//	BenchmarkTable1StaticAnalysis  — Table 1 (per-benchmark static analysis)
//	BenchmarkFig8Throughput        — Figure 8 (native / PCC / DeltaPath wo & w CPT)
//	BenchmarkTable2Collection      — Table 2 (context collection + statistics)
//
// The full, table-formatted output comes from cmd/dpbench; the benches here
// give per-phase timings and verify the pipeline under the Go benchmark
// harness. Ablations quantify the design decisions:
//
//	BenchmarkAblationBigInt*       — big.Int encoding arithmetic vs uint64
//	                                 (why anchors instead of BigInteger, §3.2)
//	BenchmarkAblationSwitchDispatch— PCCE per-target dispatch switch vs
//	                                 DeltaPath's single addition value (§3.1)
//	BenchmarkAblationDepthTracking — depth-counter UCP detection vs call
//	                                 path tracking (§4.1 alternative)
//	BenchmarkAblationStackWalk     — walking the stack at every emit vs
//	                                 maintaining the encoding
package deltapath

import (
	"fmt"
	"math/big"
	"testing"

	"deltapath/internal/breadcrumbs"
	"deltapath/internal/callgraph"
	"deltapath/internal/cct"
	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
	"deltapath/internal/instrument"
	"deltapath/internal/minivm"
	"deltapath/internal/pcc"
	"deltapath/internal/pcce"
	"deltapath/internal/stackwalk"
	"deltapath/internal/workload"
)

// benchSubset picks representative benchmarks spanning the regimes: a small
// program, a large >64-bit one (anchors), and a large application.
func benchSubset(b *testing.B) []workload.Params {
	b.Helper()
	var out []workload.Params
	for _, name := range []string{"compress", "crypto.aes", "xml.validation"} {
		p, ok := workload.ByName(name)
		if !ok {
			b.Fatalf("missing benchmark %s", name)
		}
		out = append(out, p)
	}
	return out
}

// BenchmarkTable1StaticAnalysis and BenchmarkTable2Collection live in
// eval_bench_test.go (the external test package): internal/eval imports
// the root package for the extend experiment, so in-package tests cannot
// import it back.

// BenchmarkFig8Throughput measures interpreter throughput per
// configuration; the reported steps/op correspond to Figure 8's bars.
func BenchmarkFig8Throughput(b *testing.B) {
	for _, p := range benchSubset(b) {
		p := p
		prog, err := p.Scale(0.05).Generate()
		if err != nil {
			b.Fatal(err)
		}
		build, err := cha.Build(prog, cha.Options{Setting: cha.EncodingApplication})
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Encode(build.Graph, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		planNoCPT, err := instrument.NewPlan(build, res.Spec, nil)
		if err != nil {
			b.Fatal(err)
		}
		planCPT, err := instrument.NewPlan(build, res.Spec, cpt.Compute(build.Graph))
		if err != nil {
			b.Fatal(err)
		}
		instrSet := planNoCPT.InstrumentedMethods()

		type config struct {
			name   string
			probes func() minivm.Probes
		}
		configs := []config{
			{"native", func() minivm.Probes { return nil }},
			{"pcc", func() minivm.Probes { return pcc.New(build) }},
			{"deltapath", func() minivm.Probes { return instrument.NewEncoder(planNoCPT) }},
			{"deltapath-cpt", func() minivm.Probes { return instrument.NewEncoder(planCPT) }},
		}
		for _, cfg := range configs {
			cfg := cfg
			b.Run(p.Name+"/"+cfg.name, func(b *testing.B) {
				var steps uint64
				for i := 0; i < b.N; i++ {
					vm, err := minivm.NewVM(prog, p.Seed)
					if err != nil {
						b.Fatal(err)
					}
					if probes := cfg.probes(); probes != nil {
						vm.SetProbes(probes)
						vm.SetInstrumented(instrSet)
					}
					if err := vm.Run(); err != nil {
						b.Fatal(err)
					}
					steps = vm.Steps
				}
				b.ReportMetric(float64(steps), "steps/op")
			})
		}
	}
}

// BenchmarkEncodeAlgorithm isolates Algorithm 2 (no generation, no
// estimation) on prebuilt graphs.
func BenchmarkEncodeAlgorithm(b *testing.B) {
	for _, p := range benchSubset(b) {
		p := p
		prog, err := p.Generate()
		if err != nil {
			b.Fatal(err)
		}
		build, err := cha.Build(prog, cha.Options{Setting: cha.EncodingAll})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Encode(build.Graph, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecode measures decoding latency: the paper's pitch is
// "deterministic and instant decoding" versus Breadcrumbs' seconds-long
// searches.
func BenchmarkDecode(b *testing.B) {
	p, _ := workload.ByName("compress")
	prog, err := p.Scale(0.02).Generate()
	if err != nil {
		b.Fatal(err)
	}
	build, err := cha.Build(prog, cha.Options{Setting: cha.EncodingApplication})
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := instrument.NewPlan(build, res.Spec, cpt.Compute(build.Graph))
	if err != nil {
		b.Fatal(err)
	}
	enc := instrument.NewEncoder(plan)
	vm, err := minivm.NewVM(prog, p.Seed)
	if err != nil {
		b.Fatal(err)
	}
	vm.SetProbes(enc)
	vm.SetInstrumented(plan.InstrumentedMethods())
	var states []*encoding.State
	var nodes []callgraph.NodeID
	vm.OnEmit = func(_ *minivm.VM, m minivm.MethodRef, _ string) {
		if node, ok := build.NodeOf[m]; ok && len(states) < 4096 {
			states = append(states, enc.State().Snapshot())
			nodes = append(nodes, node)
		}
	}
	if err := vm.Run(); err != nil {
		b.Fatal(err)
	}
	if len(states) == 0 {
		b.Fatal("no states collected")
	}
	dec := encoding.NewDecoder(res.Spec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i % len(states)
		if _, err := dec.Decode(states[idx], nodes[idx]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationUint64Add vs BenchmarkAblationBigIntAdd: the per-call
// cost of the encoding addition when IDs are machine integers versus
// arbitrary-precision integers at the magnitudes Table 1 requires (~2^70).
// This is the measurement behind Section 3.2's rejection of BigInteger in
// favour of anchor nodes.
func BenchmarkAblationUint64Add(b *testing.B) {
	var id uint64
	av := uint64(1) << 40
	for i := 0; i < b.N; i++ {
		id += av
		id -= av / 2
	}
	if id == 1 {
		b.Log(id)
	}
}

func BenchmarkAblationBigIntAdd(b *testing.B) {
	id := new(big.Int)
	av := new(big.Int).Lsh(big.NewInt(1), 70)
	half := new(big.Int).Rsh(av, 1)
	for i := 0; i < b.N; i++ {
		id.Add(id, av)
		id.Sub(id, half)
	}
}

// BenchmarkAblationAnchorPushPop: the cost anchors actually add per anchor
// invocation — what buys freedom from big integers.
func BenchmarkAblationAnchorPushPop(b *testing.B) {
	st := encoding.NewState(0)
	st.Add(12345)
	for i := 0; i < b.N; i++ {
		st.PushAnchor(7)
		st.Pop()
	}
}

// BenchmarkAblationSwitchDispatch compares run time under DeltaPath's
// single addition value per site against PCCE's per-target values, which
// need a dispatch-dependent lookup at every virtual call (Section 3.1).
func BenchmarkAblationSwitchDispatch(b *testing.B) {
	p, _ := workload.ByName("crypto.aes")
	prog, err := p.Scale(0.05).Generate()
	if err != nil {
		b.Fatal(err)
	}
	build, err := cha.Build(prog, cha.Options{Setting: cha.EncodingApplication})
	if err != nil {
		b.Fatal(err)
	}
	dp, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	pc, err := pcce.Encode(build.Graph, pcce.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		spec *encoding.Spec
	}{
		{"single-av", dp.Spec},
		{"per-target-switch", pc.Spec},
	} {
		cfg := cfg
		plan, err := instrument.NewPlan(build, cfg.spec, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				vm, err := minivm.NewVM(prog, p.Seed)
				if err != nil {
					b.Fatal(err)
				}
				vm.SetProbes(instrument.NewEncoder(plan))
				vm.SetInstrumented(plan.InstrumentedMethods())
				if err := vm.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationStackWalk: obtaining every emitted context by walking
// the stack, the expensive exact alternative encodings replace.
func BenchmarkAblationStackWalk(b *testing.B) {
	p, _ := workload.ByName("compress")
	prog, err := p.Scale(0.05).Generate()
	if err != nil {
		b.Fatal(err)
	}
	walker := &stackwalk.Walker{}
	for i := 0; i < b.N; i++ {
		vm, err := minivm.NewVM(prog, p.Seed)
		if err != nil {
			b.Fatal(err)
		}
		var sink int
		vm.OnEmit = func(v *minivm.VM, _ minivm.MethodRef, _ string) {
			sink += len(walker.Capture(v))
		}
		if err := vm.Run(); err != nil {
			b.Fatal(err)
		}
		if sink == 0 {
			b.Fatal("no contexts walked")
		}
	}
}

// BenchmarkAblationGraphPruning quantifies the effect of reachability
// pruning on graph size and analysis time (the KeepUnreachable option).
func BenchmarkAblationGraphPruning(b *testing.B) {
	p, _ := workload.ByName("crypto.aes")
	prog, err := p.Generate()
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		keep bool
	}{{"pruned", false}, {"unpruned", true}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var nodes int
			for i := 0; i < b.N; i++ {
				build, err := cha.Build(prog, cha.Options{KeepUnreachable: cfg.keep})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.Encode(build.Graph, core.Options{}); err != nil {
					b.Fatal(err)
				}
				nodes = build.Graph.NumNodes()
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// BenchmarkEncoderOps isolates the probe-level operation costs of the
// DeltaPath runtime: what one instrumented call and one instrumented entry
// cost.
func BenchmarkEncoderOps(b *testing.B) {
	prog, err := ParseProgram(`
entry A.main
class A {
  method main { loop 1000 { call A.f } }
  method f { work 1 }
}`)
	if err != nil {
		b.Fatal(err)
	}
	an, err := Analyze(prog, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("instrumented-call", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := an.NewSession(0)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

var _ = fmt.Sprintf // keep fmt imported for future debugging

// BenchmarkAblationDepthTracking compares the two UCP-detection schemes of
// Section 4.1 on the same workload: call path tracking (SID checks, no
// dynamic instrumentation) versus the depth-counter alternative (dynamic
// entries/exits instrumented, every cross-dynamic entry pushes).
func BenchmarkAblationDepthTracking(b *testing.B) {
	p, _ := workload.ByName("compress")
	prog, err := p.Scale(0.05).Generate()
	if err != nil {
		b.Fatal(err)
	}
	build, err := cha.Build(prog, cha.Options{Setting: cha.EncodingApplication})
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	planCPT, err := instrument.NewPlan(build, res.Spec, cpt.Compute(build.Graph))
	if err != nil {
		b.Fatal(err)
	}
	planPlain, err := instrument.NewPlan(build, res.Spec, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("call-path-tracking", func(b *testing.B) {
		var hazards uint64
		for i := 0; i < b.N; i++ {
			vm, err := minivm.NewVM(prog, p.Seed)
			if err != nil {
				b.Fatal(err)
			}
			enc := instrument.NewEncoder(planCPT)
			vm.SetProbes(enc)
			vm.SetInstrumented(planCPT.InstrumentedMethods())
			if err := vm.Run(); err != nil {
				b.Fatal(err)
			}
			hazards = enc.Hazards
		}
		b.ReportMetric(float64(hazards), "pushes/op")
	})
	b.Run("depth-tracking", func(b *testing.B) {
		var hazards uint64
		for i := 0; i < b.N; i++ {
			vm, err := minivm.NewVM(prog, p.Seed)
			if err != nil {
				b.Fatal(err)
			}
			enc := instrument.NewDepthEncoder(planPlain)
			vm.SetProbes(enc)
			// Depth tracking cannot leave the excluded library
			// uninstrumented: its entries and exits must maintain the
			// counter (Section 4.2's argument for call path tracking).
			vm.SetInstrumented(nil)
			vm.SetProbeDynamic(true)
			if err := vm.Run(); err != nil {
				b.Fatal(err)
			}
			hazards = enc.Hazards
		}
		b.ReportMetric(float64(hazards), "pushes/op")
	})
}

// BenchmarkAblationBigIntEncoder is the full-system version of the
// BigInt-vs-anchors ablation: the same >64-bit program run under (a) the
// anchor-based encoder (machine integers, Algorithm 2) and (b) the
// rejected strawman (arbitrary-precision ID, no anchors). Compare ns/op and
// B/op — the strawman allocates on the hot path.
func BenchmarkAblationBigIntEncoder(b *testing.B) {
	p, _ := workload.ByName("xml.validation")
	prog, err := p.Scale(0.05).Generate()
	if err != nil {
		b.Fatal(err)
	}
	build, err := cha.Build(prog, cha.Options{Setting: cha.EncodingAll})
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := instrument.NewPlan(build, res.Spec, nil)
	if err != nil {
		b.Fatal(err)
	}
	bigRes, err := core.EncodeBig(build.Graph)
	if err != nil {
		b.Fatal(err)
	}
	instrSet := plan.InstrumentedMethods()

	b.Run("anchors-uint64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vm, err := minivm.NewVM(prog, p.Seed)
			if err != nil {
				b.Fatal(err)
			}
			vm.SetProbes(instrument.NewEncoder(plan))
			vm.SetInstrumented(instrSet)
			if err := vm.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bigint-no-anchors", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vm, err := minivm.NewVM(prog, p.Seed)
			if err != nil {
				b.Fatal(err)
			}
			vm.SetProbes(instrument.NewBigEncoder(build, bigRes))
			vm.SetInstrumented(instrSet)
			if err := vm.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCCT compares eager calling-context-tree maintenance
// (Section 7's related work) with DeltaPath encoding on the same workload:
// the CCT pays a map access and cursor movement at every call and
// materializes one node per distinct context.
func BenchmarkAblationCCT(b *testing.B) {
	p, _ := workload.ByName("compress")
	prog, err := p.Scale(0.05).Generate()
	if err != nil {
		b.Fatal(err)
	}
	build, err := cha.Build(prog, cha.Options{Setting: cha.EncodingApplication})
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := instrument.NewPlan(build, res.Spec, nil)
	if err != nil {
		b.Fatal(err)
	}
	instrSet := plan.InstrumentedMethods()

	b.Run("deltapath", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vm, err := minivm.NewVM(prog, p.Seed)
			if err != nil {
				b.Fatal(err)
			}
			vm.SetProbes(instrument.NewEncoder(plan))
			vm.SetInstrumented(instrSet)
			if err := vm.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cct", func(b *testing.B) {
		var nodes int
		for i := 0; i < b.N; i++ {
			vm, err := minivm.NewVM(prog, p.Seed)
			if err != nil {
				b.Fatal(err)
			}
			tree := cct.New(prog.Entry)
			vm.SetProbes(tree)
			vm.SetInstrumented(instrSet)
			if err := vm.Run(); err != nil {
				b.Fatal(err)
			}
			nodes = tree.Nodes()
		}
		b.ReportMetric(float64(nodes), "cct-nodes")
	})
}

// BenchmarkAblationBreadcrumbs puts the two decoding strategies side by
// side on the same collected contexts: DeltaPath's deterministic walk
// versus the Breadcrumbs-style search over PCC values (which ran offline
// with a 5-second budget per context in the original). Run on a modest
// subgraph so the search terminates at all.
func BenchmarkAblationBreadcrumbs(b *testing.B) {
	prog, err := ParseProgram(`
entry A.main
class A { method main { call B.f; call B.g; emit top } }
class B {
  method f { call C.h; call C.i }
  method g { call C.h; call C.i }
}
class C {
  method h { call D.x; emit h }
  method i { call D.x; emit i }
}
class D { method x { emit x } }
`)
	if err != nil {
		b.Fatal(err)
	}
	build, err := cha.Build(prog, cha.Options{})
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := instrument.NewPlan(build, res.Spec, nil)
	if err != nil {
		b.Fatal(err)
	}
	// Collect one run's worth of (DeltaPath state, PCC value, node).
	dpEnc := instrument.NewEncoder(plan)
	pccEnc := pcc.New(build)
	type sample struct {
		st   *encoding.State
		v    uint64
		node callgraph.NodeID
	}
	var samples []sample
	collect := func(probes minivm.Probes, record func(m minivm.MethodRef)) {
		vm, err := minivm.NewVM(prog, 1)
		if err != nil {
			b.Fatal(err)
		}
		vm.SetProbes(probes)
		vm.SetInstrumented(plan.InstrumentedMethods())
		vm.OnEmit = func(_ *minivm.VM, m minivm.MethodRef, _ string) { record(m) }
		if err := vm.Run(); err != nil {
			b.Fatal(err)
		}
	}
	collect(dpEnc, func(m minivm.MethodRef) {
		samples = append(samples, sample{st: dpEnc.State().Snapshot(), node: build.NodeOf[m]})
	})
	i := 0
	collect(pccEnc, func(m minivm.MethodRef) {
		samples[i].v = pccEnc.Value()
		i++
	})

	b.Run("deltapath-decode", func(b *testing.B) {
		dec := encoding.NewDecoder(res.Spec)
		for i := 0; i < b.N; i++ {
			s := samples[i%len(samples)]
			if _, err := dec.Decode(s.st, s.node); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("breadcrumbs-search", func(b *testing.B) {
		dec := breadcrumbs.NewDecoder(build)
		for i := 0; i < b.N; i++ {
			s := samples[i%len(samples)]
			cands, _, err := dec.Decode(s.v, s.node, 0)
			if err != nil {
				b.Fatal(err)
			}
			if len(cands) == 0 {
				b.Fatal("search found nothing")
			}
		}
	})
}

// BenchmarkAblationProfileGuided measures Section 8's profile-guided
// optimization: after a profiling run, each node's hottest incoming edge is
// processed first and receives addition value 0; without call path
// tracking such sites need no instrumentation at all.
func BenchmarkAblationProfileGuided(b *testing.B) {
	p, _ := workload.ByName("compress")
	prog, err := p.Scale(0.05).Generate()
	if err != nil {
		b.Fatal(err)
	}
	build, err := cha.Build(prog, cha.Options{Setting: cha.EncodingApplication})
	if err != nil {
		b.Fatal(err)
	}
	counts, err := instrument.Profile(prog, build, p.Seed)
	if err != nil {
		b.Fatal(err)
	}
	plain, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	guided, err := core.Encode(build.Graph, core.Options{EdgeProfile: counts})
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		res  *core.Result
	}{{"unguided", plain}, {"profile-guided", guided}} {
		cfg := cfg
		plan, err := instrument.NewPlan(build, cfg.res.Spec, nil)
		if err != nil {
			b.Fatal(err)
		}
		active := plan.ActiveSites()
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				vm, err := minivm.NewVM(prog, p.Seed)
				if err != nil {
					b.Fatal(err)
				}
				vm.SetProbes(instrument.NewEncoder(plan))
				vm.SetInstrumented(plan.InstrumentedMethods())
				vm.SetInstrumentedSites(active)
				if err := vm.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(plan.NumFreeSites()), "free-sites")
		})
	}
}

// BenchmarkAblationBatchAnchors measures the batched restart policy (an
// engineering extension to Algorithm 2) on a hub-less lattice whose
// encoding pressure crosses the integer limit across a whole layer: the
// sequential policy restarts once per anchor, the batched one once per
// round.
func BenchmarkAblationBatchAnchors(b *testing.B) {
	g := callgraph.New()
	prev := []callgraph.NodeID{g.AddNode("main", false)}
	g.SetEntry(prev[0])
	var label int32
	for layer := 0; layer < 40; layer++ {
		var cur []callgraph.NodeID
		for i := 0; i < 4; i++ {
			n := g.AddNode(fmt.Sprintf("L%dN%d", layer, i), false)
			cur = append(cur, n)
			for _, p := range prev {
				g.AddEdge(p, label, n)
				label++
			}
		}
		prev = cur
	}
	for _, cfg := range []struct {
		name  string
		batch bool
	}{{"sequential", false}, {"batched", true}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var anchors, restarts int
			for i := 0; i < b.N; i++ {
				res, err := core.Encode(g, core.Options{MaxID: 1<<40 - 1, BatchAnchors: cfg.batch})
				if err != nil {
					b.Fatal(err)
				}
				anchors, restarts = len(res.OverflowAnchors), res.Restarts
			}
			b.ReportMetric(float64(anchors), "anchors")
			b.ReportMetric(float64(restarts), "restarts")
		})
	}
}
