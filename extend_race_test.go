package deltapath

import (
	"bytes"
	"sync"
	"testing"
)

// TestExtendConcurrentWithEncoding hammers the epoch swap: one goroutine
// publishes extensions (real and idempotent no-ops) while others run
// instrumented sessions on their pinned epochs, decode captured contexts,
// and decode an epoch-0 profile stream. Under -race this proves the
// atomic-pointer publication protocol: in-flight encoders and decoders
// never observe a torn epoch, and epoch-0 artifacts decode identically
// throughout. (make race / make extend-soak run it with the detector on.)
func TestExtendConcurrentWithEncoding(t *testing.T) {
	prog := mustParse(t, diffSrc)
	an, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Epoch-0 artifacts, prepared before any extension.
	baseContexts, err := an.Run(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseDecodes := make([][]string, len(baseContexts))
	for i, c := range baseContexts {
		if !c.known {
			continue
		}
		names, derr := an.Decode(c)
		if derr != nil {
			t.Fatal(derr)
		}
		baseDecodes[i] = names
	}
	prof := an.NewProfile(0)
	for _, c := range baseContexts {
		prof.Add(c)
	}
	var dpp bytes.Buffer
	if err := prof.Save(&dpp); err != nil {
		t.Fatal(err)
	}
	baseReport, err := an.DecodeProfile(bytes.NewReader(dpp.Bytes()), 2)
	if err != nil {
		t.Fatal(err)
	}

	const (
		sessionWorkers = 3
		decodeWorkers  = 2
		rounds         = 40
	)
	var wg sync.WaitGroup

	// Publisher: absorb X, Y, Z one at a time, padded with idempotent
	// re-absorptions so the swap path stays busy for the whole test.
	wg.Add(1)
	go func() {
		defer wg.Done()
		order := []string{"X", "X", "Y", "X", "Y", "Z", "Z", "X", "Y", "Z"}
		for i := 0; i < rounds; i++ {
			if _, err := an.Extend(order[i%len(order)]); err != nil {
				t.Errorf("Extend: %v", err)
				return
			}
			_ = an.Epoch()
			_ = an.Absorbed()
			_ = an.GraphDigest()
		}
	}()

	// Encoders: each session pins the epoch current at its creation and
	// runs to completion on it; every captured context must decode cleanly
	// against that pinned epoch no matter how many epochs were published
	// meanwhile.
	for w := 0; w < sessionWorkers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s, serr := an.NewSession(uint64(w*rounds + i))
				if serr != nil {
					t.Errorf("NewSession: %v", serr)
					return
				}
				contexts, rerr := s.Run(nil)
				if rerr != nil {
					t.Errorf("Run: %v", rerr)
					return
				}
				for _, c := range contexts {
					if !c.known {
						continue
					}
					if _, derr := an.Decode(c); derr != nil {
						t.Errorf("decode against epoch %d: %v", c.Epoch(), derr)
						return
					}
				}
			}
		}()
	}

	// Decoders: epoch-0 contexts and the epoch-0 profile stream must keep
	// decoding to the exact pre-extension results.
	for w := 0; w < decodeWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				for j, c := range baseContexts {
					if !c.known {
						continue
					}
					names, derr := an.Decode(c)
					if derr != nil {
						t.Errorf("epoch-0 context decode: %v", derr)
						return
					}
					if len(names) != len(baseDecodes[j]) {
						t.Errorf("epoch-0 decode changed: %v != %v", names, baseDecodes[j])
						return
					}
				}
				report, derr := an.DecodeProfile(bytes.NewReader(dpp.Bytes()), 2)
				if derr != nil {
					t.Errorf("epoch-0 profile decode: %v", derr)
					return
				}
				if report.Total != baseReport.Total || len(report.Rows) != len(baseReport.Rows) {
					t.Errorf("epoch-0 profile report changed: %d/%d rows, want %d/%d",
						report.Total, len(report.Rows), baseReport.Total, len(baseReport.Rows))
					return
				}
			}
		}()
	}

	wg.Wait()
}
