// BenchmarkEncodeHotPath is the regression gate for the per-event cost of
// the runtime encoder — the constant-time work the paper's instrumentation
// performs at every call site and method entry/exit.
//
// It records the exact probe-event stream of one instrumented run (call
// sites, dispatch targets, entries, exits), then replays that stream
// directly against a fresh encoder, so the measurement is the encoder's
// hot path alone: no interpreter dispatch, no workload arithmetic. CI and
// `make bench-smoke` compare the ns/event metric against the baseline in
// results/ (see EXPERIMENTS.md "Bench-smoke regression gate").
package deltapath

import (
	"testing"

	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/instrument"
	"deltapath/internal/minivm"
	"deltapath/internal/workload"
)

// probeEvent is one recorded instrumentation event. Matching pairs
// (BeforeCall/AfterCall, Enter/Exit) are properly nested in the stream, so
// a replay threads tokens through a single stack.
type probeEvent struct {
	kind   uint8 // 0 BeforeCall, 1 AfterCall, 2 Enter, 3 Exit
	site   minivm.SiteRef
	target minivm.MethodRef
	m      minivm.MethodRef
}

// probeRecorder wraps an encoder, forwarding every event and appending it
// to the stream.
type probeRecorder struct {
	enc    *instrument.Encoder
	stream []probeEvent
}

func (r *probeRecorder) BeforeCall(site minivm.SiteRef, target minivm.MethodRef) uint8 {
	r.stream = append(r.stream, probeEvent{kind: 0, site: site, target: target})
	return r.enc.BeforeCall(site, target)
}

func (r *probeRecorder) AfterCall(site minivm.SiteRef, target minivm.MethodRef, token uint8) {
	r.stream = append(r.stream, probeEvent{kind: 1, site: site, target: target})
	r.enc.AfterCall(site, target, token)
}

func (r *probeRecorder) Enter(m minivm.MethodRef) uint8 {
	r.stream = append(r.stream, probeEvent{kind: 2, m: m})
	return r.enc.Enter(m)
}

func (r *probeRecorder) Exit(m minivm.MethodRef, token uint8) {
	r.stream = append(r.stream, probeEvent{kind: 3, m: m})
	r.enc.Exit(m, token)
}

// recordEventStream runs one workload under full instrumentation (CPT on)
// and returns the encoder plan plus the recorded probe-event stream.
func recordEventStream(b *testing.B, name string, scale float64) (*instrument.Plan, []probeEvent) {
	b.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		b.Fatalf("missing benchmark %s", name)
	}
	prog, err := p.Scale(scale).Generate()
	if err != nil {
		b.Fatal(err)
	}
	build, err := cha.Build(prog, cha.Options{Setting: cha.EncodingAll})
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := instrument.NewPlan(build, res.Spec, cpt.Compute(build.Graph))
	if err != nil {
		b.Fatal(err)
	}
	rec := &probeRecorder{enc: instrument.NewEncoder(plan)}
	vm, err := minivm.NewVM(prog, p.Seed)
	if err != nil {
		b.Fatal(err)
	}
	vm.SetProbes(rec)
	vm.SetInstrumented(plan.InstrumentedMethods())
	if err := vm.Run(); err != nil {
		b.Fatal(err)
	}
	if len(rec.stream) == 0 {
		b.Fatal("recorded no probe events")
	}
	return plan, rec.stream
}

// replayStream drives the recorded stream through enc once, threading
// tokens through a nesting stack exactly as the interpreter would.
func replayStream(enc *instrument.Encoder, stream []probeEvent, tokens []uint8) []uint8 {
	tokens = tokens[:0]
	for i := range stream {
		ev := &stream[i]
		switch ev.kind {
		case 0:
			tokens = append(tokens, enc.BeforeCall(ev.site, ev.target))
		case 2:
			tokens = append(tokens, enc.Enter(ev.m))
		case 1:
			enc.AfterCall(ev.site, ev.target, tokens[len(tokens)-1])
			tokens = tokens[:len(tokens)-1]
		case 3:
			enc.Exit(ev.m, tokens[len(tokens)-1])
			tokens = tokens[:len(tokens)-1]
		}
	}
	return tokens
}

// BenchmarkEncodeHotPath measures the encoder's per-probe-event cost with
// the default (disabled) observability sink. One iteration replays the
// whole recorded stream; the ns/event metric divides by the stream length.
func BenchmarkEncodeHotPath(b *testing.B) {
	plan, stream := recordEventStream(b, "compress", 0.02)
	enc := instrument.NewEncoder(plan)
	tokens := make([]uint8, 0, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Reset()
		tokens = replayStream(enc, stream, tokens)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*int64(len(stream))), "ns/event")
	if enc.MaxID == 0 && enc.MaxStackDepth == 0 {
		b.Fatal("replay did not exercise the encoder")
	}
}
