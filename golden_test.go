package deltapath

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden/*.decoded from current output")

// TestGoldenProfilePipeline runs the full pipeline — encode, concurrent
// profile collection, .dpp serialization, parallel decode — over every
// testdata program and diffs the hot-context report against a committed
// golden file. The encoding, the store, the wire format, and the decoder
// are all deterministic, so any drift in these files is a behavior change
// that must be reviewed (and blessed with `go test -run Golden -update`).
func TestGoldenProfilePipeline(t *testing.T) {
	programs, err := filepath.Glob("testdata/*.mv")
	if err != nil {
		t.Fatal(err)
	}
	if len(programs) == 0 {
		t.Fatal("no testdata programs")
	}
	seeds := []uint64{0, 1, 2, 3}
	for _, path := range programs {
		name := strings.TrimSuffix(filepath.Base(path), ".mv")
		t.Run(name, func(t *testing.T) {
			an := loadAnalysis(t, path)
			prof, err := an.RunParallel(seeds, nil)
			if err != nil {
				t.Fatal(err)
			}
			var dpp bytes.Buffer
			if err := prof.Save(&dpp); err != nil {
				t.Fatal(err)
			}

			// The report must not depend on the worker count.
			serial, err := an.DecodeProfile(bytes.NewReader(dpp.Bytes()), 1)
			if err != nil {
				t.Fatal(err)
			}
			pooled, err := an.DecodeProfile(bytes.NewReader(dpp.Bytes()), 4)
			if err != nil {
				t.Fatal(err)
			}
			got := renderGolden(pooled)
			if want := renderGolden(serial); got != want {
				t.Fatalf("workers=4 report differs from workers=1:\n%s\n---\n%s", got, want)
			}

			goldenPath := filepath.Join("testdata", "golden", name+".decoded")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("%v (run `go test -run Golden -update` to create)", err)
			}
			if got != string(want) {
				t.Errorf("decoded profile drifted from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

func renderGolden(rep *ProfileReport) string {
	var b strings.Builder
	for _, row := range rep.Rows {
		fmt.Fprintf(&b, "%8d  %s\n", row.Count, row.Context)
	}
	fmt.Fprintf(&b, "# %d contexts, %d samples\n", len(rep.Rows), rep.Total)
	return b.String()
}
