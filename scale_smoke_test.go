package deltapath

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"testing"

	"deltapath/internal/analysisio"
	"deltapath/internal/callgraph"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
	"deltapath/internal/verify"
	"deltapath/internal/workload"
)

// TestScaleSmoke is the CI scale-smoke gate: one reduced huge-graph tier run
// end to end — generate, analyze with the level-parallel engine and the
// serial reference, prove the serialized .dpa byte-identical, certify the
// spec with the verifier both serially and on 4 workers (byte-identical
// reports, under -race in CI), compile, and decode sampled contexts — every
// verdict the full 10⁵–10⁶-node curve (dpbench -experiment scale) relies
// on. SCALE_SMOKE_NODES overrides the tier size (CI uses 50000).
func TestScaleSmoke(t *testing.T) {
	nodes := 20_000
	if s := os.Getenv("SCALE_SMOKE_NODES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 2_000 {
			t.Fatalf("SCALE_SMOKE_NODES=%q: need an integer >= 2000", s)
		}
		nodes = n
	} else if testing.Short() {
		nodes = 5_000
	}
	params := workload.HugeSmoke(nodes)
	g, err := params.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() < nodes*9/10 || g.NumEdges() < 2*g.NumNodes() {
		t.Errorf("tier shape off target: %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}

	par, err := core.Encode(g, core.Options{Workers: 4, ParThreshold: -1, MeasureMemory: true})
	if err != nil {
		t.Fatalf("parallel encode: %v", err)
	}
	st := par.Stats
	if st == nil || st.Par != 4 || st.Levels == 0 {
		t.Fatalf("level-parallel engine did not engage: %+v", st)
	}
	if st.PeakBytes == 0 || st.BytesPerNode <= 0 {
		t.Errorf("memory budget not reported: %+v", st)
	}
	t.Logf("tier %s: %d nodes, %d edges, %d anchors, %d levels, %.0f B/node",
		params.Name, st.Nodes, st.Edges, len(par.Spec.Anchors), st.Levels, st.BytesPerNode)
	if len(par.Spec.Anchors) == 0 {
		t.Error("huge tier produced no anchors (hub rings and pockets missing?)")
	}

	serial, err := core.Encode(g, core.Options{Workers: 1})
	if err != nil {
		t.Fatalf("serial encode: %v", err)
	}

	// Byte-identity of the whole serialized analysis (spec + SIDs).
	plan := cpt.Compute(g)
	var pb, sb bytes.Buffer
	if err := analysisio.Save(&pb, par.Spec, plan); err != nil {
		t.Fatal(err)
	}
	if err := analysisio.Save(&sb, serial.Spec, plan); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb.Bytes(), sb.Bytes()) {
		t.Errorf("parallel .dpa bytes diverged from the serial reference (%d vs %d bytes)",
			pb.Len(), sb.Len())
	}

	// Serial and level-parallel verification must agree byte for byte: same
	// rendered report, same JSON document, same certificate — the verifier's
	// analogue of the .dpa identity above. CI runs this under -race, so the
	// parallel proof pool is also exercised for data races here.
	rep := verify.Check(par.Spec, plan, verify.Options{})
	if !rep.Clean() {
		t.Errorf("verifier reported %d findings; first: %v", len(rep.Findings), rep.Findings[0])
	}
	prep := verify.Check(par.Spec, plan, verify.Options{Workers: 4})
	if rep.Text() != prep.Text() {
		t.Errorf("parallel verifier text diverged from serial:\n%s\nvs\n%s", prep.Text(), rep.Text())
	}
	rj, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(prep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rj, pj) {
		t.Error("parallel verifier JSON report diverged from serial")
	}
	if !reflect.DeepEqual(rep.Certificate, prep.Certificate) {
		t.Error("parallel verifier certificate diverged from serial")
	}
	if rep.Certificate == nil {
		t.Error("clean verification emitted no certificate")
	}

	// Decode sampled random-walk contexts through the compiled tables.
	dec := encoding.Compile(par.Spec)
	entry, _ := g.Entry()
	rnd := rand.New(rand.NewSource(1))
	var buf []encoding.Frame
	var path []callgraph.Edge
	for i := 0; i < 128; i++ {
		path = path[:0]
		cur := entry
		for d := 8 + rnd.Intn(120); d > 0; d-- {
			outs := g.Out(cur)
			if len(outs) == 0 {
				break
			}
			e := outs[rnd.Intn(len(outs))]
			path = append(path, e)
			cur = e.Callee
		}
		state, err := encoding.EncodePath(par.Spec, path)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if buf, err = dec.DecodeInto(buf[:0], state, cur); err != nil {
			t.Fatalf("sample %d: decode: %v", i, err)
		}
		if len(buf) == 0 || buf[len(buf)-1].Node != cur {
			t.Fatalf("sample %d: decoded context does not end at %s", i, g.Name(cur))
		}
	}
}
