package deltapath

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCorpus runs every program in testdata/ through the full public
// pipeline — analyze, execute with several dispatch seeds, decode every
// context, round-trip every context through binary serialization — under
// both encoding settings. The corpus covers recursion, exceptions,
// executor tasks, selective encoding, and dynamic class loading.
func TestCorpus(t *testing.T) {
	files, err := filepath.Glob("testdata/*.mv")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("corpus too small: %v", files)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := ParseProgram(string(src))
			if err != nil {
				t.Fatal(err)
			}
			for _, appOnly := range []bool{false, true} {
				an, err := Analyze(prog, Options{ApplicationOnly: appOnly})
				if err != nil {
					t.Fatalf("appOnly=%v: %v", appOnly, err)
				}
				decoded := 0
				for seed := uint64(0); seed < 4; seed++ {
					contexts, err := an.Run(seed, nil)
					if err != nil {
						t.Fatalf("appOnly=%v seed=%d: %v", appOnly, seed, err)
					}
					for _, c := range contexts {
						names, err := an.Decode(c)
						if err != nil {
							// Emits inside dynamic classes are legitimately
							// outside the analysed program.
							if strings.Contains(err.Error(), "outside the analysed") {
								continue
							}
							t.Fatalf("appOnly=%v seed=%d decode at %s: %v", appOnly, seed, c.At, err)
						}
						decoded++
						rec, err := c.MarshalBinary()
						if err != nil {
							t.Fatal(err)
						}
						back, err := an.DecodeBytes(rec)
						if err != nil {
							t.Fatal(err)
						}
						if strings.Join(back, ">") != strings.Join(names, ">") {
							t.Fatalf("serialization changed decode: %v vs %v", back, names)
						}
					}
				}
				if decoded == 0 {
					t.Fatalf("appOnly=%v: nothing decoded", appOnly)
				}
			}
		})
	}
}
