package deltapath

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGraphBuilderRTA runs the whole corpus through the public pipeline
// with the RTA builder: analyses construct, executions run, every emitted
// context decodes (or is legitimately outside the analysed program — RTA
// prunes statically unreachable methods by design), and the verifier
// certifies each encoding sound.
func TestGraphBuilderRTA(t *testing.T) {
	files, err := filepath.Glob("testdata/*.mv")
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus: %v", err)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := ParseProgram(string(src))
			if err != nil {
				t.Fatal(err)
			}
			chaAn, err := Analyze(prog, Options{})
			if err != nil {
				t.Fatal(err)
			}
			an, err := Analyze(prog, Options{GraphBuilder: GraphRTA})
			if err != nil {
				t.Fatal(err)
			}
			if err := an.VerifyEncoding(); err != nil {
				t.Fatalf("rta analysis fails verification: %v", err)
			}
			// The acceptance inequality, end to end: RTA never yields a
			// larger graph than CHA (digest strings lead with node and
			// edge counts).
			var rn, re, cn, ce int
			var rh, ch string
			fmt.Sscanf(an.GraphDigest(), "%d nodes/%d edges/%s", &rn, &re, &rh)
			fmt.Sscanf(chaAn.GraphDigest(), "%d nodes/%d edges/%s", &cn, &ce, &ch)
			if rn > cn || re > ce {
				t.Fatalf("rta graph (%s) larger than cha graph (%s)",
					an.GraphDigest(), chaAn.GraphDigest())
			}
			for seed := uint64(0); seed < 3; seed++ {
				contexts, err := an.Run(seed, nil)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for _, c := range contexts {
					if _, err := an.Decode(c); err != nil &&
						!strings.Contains(err.Error(), "outside the analysed") {
						t.Fatalf("seed %d decode at %s: %v", seed, c.At, err)
					}
				}
			}
		})
	}
}

// TestGraphBuilderRTARequiresCPT pins the option conflict.
func TestGraphBuilderRTARequiresCPT(t *testing.T) {
	prog, err := ParseProgram("entry a.M.m\nclass a.M { method m { emit x } }\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(prog, Options{GraphBuilder: GraphRTA, DisableCPT: true}); err == nil {
		t.Fatal("RTA with CPT disabled should be rejected")
	}
}

// TestVerifyEncodingCleanByDefault: every default analysis over the corpus
// must self-certify.
func TestVerifyEncodingCleanByDefault(t *testing.T) {
	files, _ := filepath.Glob("testdata/*.mv")
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := ParseProgram(string(src))
		if err != nil {
			t.Fatal(err)
		}
		for _, appOnly := range []bool{false, true} {
			an, err := Analyze(prog, Options{ApplicationOnly: appOnly})
			if err != nil {
				t.Fatal(err)
			}
			if err := an.VerifyEncoding(); err != nil {
				t.Errorf("%s appOnly=%v: %v", file, appOnly, err)
			}
		}
	}
}
