package deltapath_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"testing"

	"deltapath"
)

// analyzeTestProgram loads a small corpus program for the cancellation
// tests.
func analyzeTestProgram(t *testing.T) *deltapath.Analysis {
	t.Helper()
	src, err := os.ReadFile("testdata/recursion.mv")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := deltapath.ParseProgram(string(src))
	if err != nil {
		t.Fatal(err)
	}
	an, err := deltapath.Analyze(prog, deltapath.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

// TestRunParallelContextCancelled: a pre-cancelled context starts no
// sessions and reports context.Canceled.
func TestRunParallelContextCancelled(t *testing.T) {
	an := analyzeTestProgram(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	emitted := 0
	_, err := an.RunParallelContext(ctx, []uint64{1, 2, 3, 4}, func(deltapath.Context) { emitted++ })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if emitted != 0 {
		t.Fatalf("pre-cancelled RunParallelContext emitted %d contexts", emitted)
	}
}

// TestDecodeProfileContextCancelled: cancellation aborts a profile decode
// with ctx.Err(); a background context decodes identically to
// DecodeProfile.
func TestDecodeProfileContextCancelled(t *testing.T) {
	an := analyzeTestProgram(t)
	prof, err := an.RunParallel([]uint64{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := prof.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dpp := buf.Bytes()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := an.DecodeProfileContext(ctx, bytes.NewReader(dpp), 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled decode: err = %v, want context.Canceled", err)
	}

	want, err := an.DecodeProfile(bytes.NewReader(dpp), 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := an.DecodeProfileContext(context.Background(), bytes.NewReader(dpp), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != want.Total || len(got.Rows) != len(want.Rows) {
		t.Fatalf("background-context decode drifted: %d/%d rows, %d/%d total",
			len(got.Rows), len(want.Rows), got.Total, want.Total)
	}
}
