package deltapath

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"deltapath/internal/analysisio"
	"deltapath/internal/callgraph"
	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
	"deltapath/internal/lang"
	"deltapath/internal/verify"
)

// TestGoldenLint golden-tests dplint's two output surfaces over a set of
// deliberately defective analysis files, one fixture per verifier check.
// Each fixture under testdata/lint is a real .dpa artifact generated from a
// testdata program (or a minimal synthetic graph) with one seeded defect,
// and each golden under testdata/golden/lint pins the exact text and JSON
// report the verifier emits for it. Everything here is byte-deterministic
// — analysisio.Save and the verifier's rendering both are — so `-update`
// regenerates fixtures and goldens alike, and CI's freshness gate diffs
// both directories.
//
// The fixtures double as the negative half of the verifier's CLI contract:
// every one of them (except `clean`) must produce its named finding, so a
// verifier change that silently stops detecting a defect class turns this
// red even before the golden diff does.

// lintFixture describes one seeded-defect artifact: how to generate its
// bytes and which check (if any) its report must contain.
type lintFixture struct {
	name  string
	check string // "" for the clean fixture
	gen   func(t *testing.T) []byte
}

// lintSpec builds the analysis pieces for a testdata program exactly as
// dplint's .mv path does (KeepUnreachable instrumentation graph, CPT on).
func lintSpec(t *testing.T, name string) (*encoding.Spec, *cpt.Plan) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	build, err := cha.Build(prog, cha.Options{KeepUnreachable: true})
	if err != nil {
		t.Fatalf("%s: build: %v", name, err)
	}
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		t.Fatalf("%s: encode: %v", name, err)
	}
	return res.Spec, cpt.Compute(build.Graph)
}

func saveLint(t *testing.T, spec *encoding.Spec, plan *cpt.Plan) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := analysisio.Save(&buf, spec, plan); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// recursionPushEdges returns the spec's recursion push edges in
// deterministic order, so mutations that pick "the first one" are stable
// across runs (map iteration order is not).
func recursionPushEdges(spec *encoding.Spec) []callgraph.Edge {
	var out []callgraph.Edge
	for e, kind := range spec.Push {
		if kind == encoding.PieceRecursion {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Caller != b.Caller {
			return a.Caller < b.Caller
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.Callee < b.Callee
	})
	return out
}

func lintFixtures() []lintFixture {
	return []lintFixture{
		{
			// A defect-free artifact: pins the clean report shape.
			name: "clean",
			gen: func(t *testing.T) []byte {
				spec, plan := lintSpec(t, "dynload.mv")
				return saveLint(t, spec, plan)
			},
		},
		{
			// Lower the first nonzero addition value whose decrement
			// collides two intervals — injectivity lost (Algorithm 1).
			name:  "interval-overlap",
			check: "intervals",
			gen: func(t *testing.T) []byte {
				spec, plan := lintSpec(t, "dynload.mv")
				for _, s := range spec.Graph.Sites() {
					av, ok := spec.SiteAV[s]
					if !ok || av == 0 {
						continue
					}
					spec.SiteAV[s] = av - 1
					if rep := verify.Check(spec, plan, verify.Options{}); !rep.Clean() {
						return saveLint(t, spec, plan)
					}
					spec.SiteAV[s] = av
				}
				t.Fatal("no lowered addition value produced a finding")
				return nil
			},
		},
		{
			// An addition value at the integer limit overflows every
			// positive interval width (Algorithm 2's capacity bound).
			name:  "anchor-capacity",
			check: "capacity",
			gen: func(t *testing.T) []byte {
				spec, plan := lintSpec(t, "shapes.mv")
				for _, s := range spec.Graph.Sites() {
					if _, ok := spec.SiteAV[s]; ok {
						spec.SiteAV[s] = math.MaxInt64
						break
					}
				}
				return saveLint(t, spec, plan)
			},
		},
		{
			// A recursive cycle whose back-edge target is not an anchor:
			// the cycle crosses no piece boundary.
			name:  "recursion-unanchored",
			check: "recursion-anchored",
			gen: func(t *testing.T) []byte {
				spec, plan := lintSpec(t, "recursion.mv")
				rec := recursionPushEdges(spec)
				if len(rec) == 0 {
					t.Fatal("recursion.mv produced no recursion push edge")
				}
				delete(spec.Anchors, rec[0].Callee)
				return saveLint(t, spec, plan)
			},
		},
		{
			// Drop a recursion push edge: the forward graph keeps the
			// cycle and decoding could not terminate. Not every
			// recursion-marked edge lies on a cycle, so take the first
			// (in deterministic order) whose removal actually breaks the
			// invariant.
			name:  "forward-cycle",
			check: "forward-acyclic",
			gen: func(t *testing.T) []byte {
				spec, plan := lintSpec(t, "recursion.mv")
				for _, e := range recursionPushEdges(spec) {
					kind := spec.Push[e]
					delete(spec.Push, e)
					if rep := verify.Check(spec, plan, verify.Options{}); !rep.Clean() {
						return saveLint(t, spec, plan)
					}
					spec.Push[e] = kind
				}
				t.Fatal("no dropped recursion push edge produced a finding")
				return nil
			},
		},
		{
			// A per-edge spec whose virtual site gives its dispatch
			// targets different addition values — the single hardware
			// addition at the site cannot be right for both.
			name:  "virtual-site-av",
			check: "virtual-site-av",
			gen: func(t *testing.T) []byte {
				g := callgraph.New()
				main := g.AddNode("app.Main.main", false)
				a := g.AddNode("app.A.f", false)
				b := g.AddNode("app.B.f", false)
				g.SetEntry(main)
				ea := g.AddEdge(main, 0, a)
				eb := g.AddEdge(main, 0, b)
				spec := &encoding.Spec{
					Graph:   g,
					PerEdge: true,
					SiteAV:  map[callgraph.Site]uint64{},
					EdgeAV:  map[callgraph.Edge]uint64{ea: 0, eb: 1},
					Push:    map[callgraph.Edge]encoding.PieceKind{},
					Anchors: map[callgraph.NodeID]bool{},
				}
				return saveLint(t, spec, nil)
			},
		},
		{
			// A node outside every territory has no decodable encoding
			// space at all.
			name:  "coverage-hole",
			check: "coverage",
			gen: func(t *testing.T) []byte {
				g := callgraph.New()
				main := g.AddNode("app.Main.main", false)
				g.AddNode("app.Orphan.run", false)
				g.SetEntry(main)
				spec := &encoding.Spec{
					Graph:   g,
					SiteAV:  map[callgraph.Site]uint64{},
					EdgeAV:  map[callgraph.Edge]uint64{},
					Push:    map[callgraph.Edge]encoding.PieceKind{},
					Anchors: map[callgraph.NodeID]bool{},
				}
				return saveLint(t, spec, nil)
			},
		},
		{
			// An expected SID outside every set: Section 4.1's closure is
			// broken and the runtime would resync on a legal path.
			name:  "cpt-drift",
			check: "cpt-closure",
			gen: func(t *testing.T) []byte {
				spec, plan := lintSpec(t, "shapes.mv")
				sites := spec.Graph.Sites()
				if len(sites) == 0 {
					t.Fatal("no sites")
				}
				plan.Expected[sites[0]] += int32(plan.NumSets)
				return saveLint(t, spec, plan)
			},
		},
		{
			// A partial write: the artifact ends mid-stream and must load
			// as corrupt, never verify clean or panic.
			name:  "truncated",
			check: "load",
			gen: func(t *testing.T) []byte {
				spec, plan := lintSpec(t, "dynload.mv")
				data := saveLint(t, spec, plan)
				return data[:len(data)/3]
			},
		},
	}
}

func TestGoldenLint(t *testing.T) {
	for _, fx := range lintFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			fixturePath := filepath.Join("testdata", "lint", fx.name+".dpa")
			data := fx.gen(t)

			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(fixturePath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(fixturePath, data, 0o644); err != nil {
					t.Fatal(err)
				}
			} else {
				committed, err := os.ReadFile(fixturePath)
				if err != nil {
					t.Fatalf("%v (run `go test -run TestGoldenLint -update` to create)", err)
				}
				if !bytes.Equal(committed, data) {
					t.Fatalf("%s drifted from its generator: the encoder or serializer changed; review and run `go test -run TestGoldenLint -update`", fixturePath)
				}
			}

			// Verify the artifact exactly as `dplint <file>.dpa` does, and
			// pin both rendered surfaces.
			rep := verify.CheckFile(fixturePath, verify.Options{})
			rep.Source = filepath.ToSlash(fixturePath)
			if fx.check == "" {
				if !rep.Clean() {
					t.Fatalf("clean fixture produced findings:\n%s", rep.Text())
				}
			} else {
				found := false
				for _, d := range rep.Findings {
					if d.Check == fx.check {
						found = true
					}
				}
				if !found {
					t.Fatalf("fixture did not produce a %q finding:\n%s", fx.check, rep.Text())
				}
			}

			for ext, got := range map[string]string{".txt": rep.Text(), ".json": rep.JSON()} {
				goldenPath := filepath.Join("testdata", "golden", "lint", fx.name+ext)
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(goldenPath)
				if err != nil {
					t.Fatalf("%v (run `go test -run TestGoldenLint -update` to create)", err)
				}
				if got != string(want) {
					t.Errorf("dplint output drifted from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
				}
			}
		})
	}
}
