package deltapath

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"deltapath/internal/encoding"
)

// TestCompiledDecoderCorpusDifferential is the corpus-wide equivalence proof
// of the compiled decode path: for every program in testdata/, under both
// encoding settings and several dispatch seeds, every captured context must
// decode to byte-identical frames through the legacy map-based decoder and
// the compiled flat tables — and deterministically mutated records must
// agree too, on error class and on the best-effort salvage.
func TestCompiledDecoderCorpusDifferential(t *testing.T) {
	files, err := filepath.Glob("testdata/*.mv")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty corpus")
	}
	sentinels := []error{ErrCorruptEncoding, ErrNoMatchingEdge, ErrResidualID}
	sameClass := func(a, b error) bool {
		if (a == nil) != (b == nil) {
			return false
		}
		for _, s := range sentinels {
			if errors.Is(a, s) != errors.Is(b, s) {
				return false
			}
		}
		return true
	}
	framesEqual := func(a, b []encoding.Frame) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := ParseProgram(string(src))
			if err != nil {
				t.Fatal(err)
			}
			for _, appOnly := range []bool{false, true} {
				an, err := Analyze(prog, Options{ApplicationOnly: appOnly})
				if err != nil {
					t.Fatal(err)
				}
				legacy := encoding.NewDecoder(an.epoch().result.Spec)
				compiled := an.epoch().decoder
				var buf []encoding.Frame // exercises the DecodeInto reuse path
				checked, mutated := 0, 0
				for seed := uint64(0); seed < 3; seed++ {
					contexts, err := an.Run(seed, nil)
					if err != nil {
						t.Fatalf("appOnly=%v seed=%d: %v", appOnly, seed, err)
					}
					for _, c := range contexts {
						if !c.known {
							continue
						}
						want, wantErr := legacy.Decode(c.state, c.node)
						buf, err = compiled.DecodeInto(buf, c.state, c.node)
						if !sameClass(wantErr, err) {
							t.Fatalf("error diverged: legacy %v, compiled %v", wantErr, err)
						}
						if wantErr == nil && !framesEqual(want, buf) {
							t.Fatalf("frames diverged at %s:\nlegacy:   %+v\ncompiled: %+v", c.At, want, buf)
						}
						checked++
						// Deterministic single-byte mutations of the wire
						// record: whatever still parses must stay equivalent,
						// error classes and best-effort salvage included.
						rec, err := c.MarshalBinary()
						if err != nil {
							t.Fatal(err)
						}
						for pos := 0; pos < len(rec); pos += 3 {
							mut := append([]byte(nil), rec...)
							mut[pos] ^= 0x15
							st, end, err := encoding.UnmarshalContext(mut)
							if err != nil {
								continue
							}
							mWant, mWantErr := legacy.Decode(st.Snapshot(), end)
							mGot, mGotErr := compiled.Decode(st.Snapshot(), end)
							if !sameClass(mWantErr, mGotErr) {
								t.Fatalf("mutated record: error diverged: legacy %v, compiled %v", mWantErr, mGotErr)
							}
							if mWantErr == nil && !framesEqual(mWant, mGot) {
								t.Fatalf("mutated record: frames diverged:\nlegacy:   %+v\ncompiled: %+v", mWant, mGot)
							}
							beWant, beWantOK := legacy.DecodeBestEffort(st.Snapshot(), end)
							beGot, beGotOK := compiled.DecodeBestEffort(st.Snapshot(), end)
							if beWantOK != beGotOK || !framesEqual(beWant, beGot) {
								t.Fatalf("mutated record: best-effort diverged:\nlegacy %+v (%v)\ncompiled %+v (%v)",
									beWant, beWantOK, beGot, beGotOK)
							}
							mutated++
						}
					}
				}
				if checked == 0 {
					t.Fatalf("appOnly=%v: no contexts checked", appOnly)
				}
				if mutated == 0 {
					t.Fatalf("appOnly=%v: no mutated records exercised", appOnly)
				}
			}
		})
	}
}
