package deltapath

import (
	"bytes"
	"testing"
)

// FuzzExtend drives Analysis.Extend with fuzzer-chosen extension sequences
// over the differential corpus program and asserts the epoch invariants
// that hold for EVERY sequence, valid or degenerate:
//
//   - every published epoch passes internal/verify (Extend's gate — an
//     extension that fails it must be rejected with the old epoch kept);
//   - the super-closure is respected (absorbing Y pulls in X) and
//     re-absorption is an idempotent no-op;
//   - an epoch-0 profile saved before any extension keeps decoding to the
//     same report, and re-saving it reproduces the bytes identically,
//     regardless of how many epochs were published afterwards.
//
// Each input byte is one operation: low bits pick a dynamic class (or an
// unknown name, which must fail cleanly without publishing).
func FuzzExtend(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{2, 1, 0})
	f.Add([]byte{1, 1, 1, 1})
	f.Add([]byte{3, 0, 2})
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		prog := mustParse(t, diffSrc)
		an, err := Analyze(prog, Options{})
		if err != nil {
			t.Fatal(err)
		}

		// Epoch-0 artifacts the run must never disturb.
		contexts, err := an.Run(1, nil)
		if err != nil {
			t.Fatal(err)
		}
		prof := an.NewProfile(0)
		for _, c := range contexts {
			prof.Add(c)
		}
		var dpp bytes.Buffer
		if err := prof.Save(&dpp); err != nil {
			t.Fatal(err)
		}
		baseReport, err := an.DecodeProfile(bytes.NewReader(dpp.Bytes()), 1)
		if err != nil {
			t.Fatal(err)
		}

		names := []string{"X", "Y", "Z", "Missing"}
		absorbed := map[string]bool{}
		for _, op := range ops {
			name := names[int(op)%len(names)]
			before := an.Epoch()
			stats, eerr := an.Extend(name)
			switch {
			case name == "Missing":
				if eerr == nil {
					t.Fatalf("Extend(%q) accepted an unknown class", name)
				}
				if an.Epoch() != before {
					t.Fatalf("failed Extend published epoch %d (was %d)", an.Epoch(), before)
				}
				continue
			case eerr != nil:
				t.Fatalf("Extend(%q): %v", name, eerr)
			}
			if absorbed[name] {
				// Idempotent no-op: same epoch, nothing new.
				if an.Epoch() != before || len(stats.NewClasses) != 0 {
					t.Fatalf("re-absorbing %q moved epoch %d->%d (new %v)", name, before, an.Epoch(), stats.NewClasses)
				}
				continue
			}
			if an.Epoch() != before+1 {
				t.Fatalf("absorbing %q moved epoch %d->%d, want +1", name, before, an.Epoch())
			}
			for _, n := range stats.NewClasses {
				absorbed[n] = true // super-closure may pull in more than name
			}
			if name == "Y" && !absorbed["X"] {
				t.Fatalf("absorbing Y did not pull in its dynamic super X (got %v)", stats.NewClasses)
			}
			if !absorbed[name] {
				t.Fatalf("Extend(%q) succeeded but %q not in NewClasses %v", name, name, stats.NewClasses)
			}
			// The publish gate: the epoch that is now current must verify.
			if verr := an.VerifyEncoding(); verr != nil {
				t.Fatalf("published epoch %d fails verification: %v", an.Epoch(), verr)
			}
		}

		// Old-epoch artifacts survive every sequence byte-identically.
		var again bytes.Buffer
		if err := prof.Save(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dpp.Bytes(), again.Bytes()) {
			t.Fatalf("epoch-0 profile re-save changed bytes after %d extensions", an.Epoch())
		}
		report, err := an.DecodeProfile(bytes.NewReader(dpp.Bytes()), 1)
		if err != nil {
			t.Fatalf("epoch-0 profile decode after extensions: %v", err)
		}
		if report.Total != baseReport.Total || len(report.Rows) != len(baseReport.Rows) {
			t.Fatalf("epoch-0 report drifted: %d totals/%d rows, want %d/%d",
				report.Total, len(report.Rows), baseReport.Total, len(baseReport.Rows))
		}
		for i := range report.Rows {
			if report.Rows[i] != baseReport.Rows[i] {
				t.Fatalf("epoch-0 report row %d drifted: %+v != %+v", i, report.Rows[i], baseReport.Rows[i])
			}
		}
	})
}
