package deltapath

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"deltapath/internal/obs"
)

// analyzeObserved parses testSrc and returns an analysis with metrics and
// tracing enabled.
func analyzeObserved(t *testing.T) *Analysis {
	t.Helper()
	prog, err := ParseProgram(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	an.EnableTracing(256)
	return an
}

func TestMetricsDisabledByDefault(t *testing.T) {
	prog, err := ParseProgram(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.Run(1, nil); err != nil {
		t.Fatal(err)
	}
	if snap := an.Metrics().Snapshot(); len(snap) != 0 {
		t.Fatalf("metrics off, but snapshot is non-empty: %v", snap)
	}
	if evs := an.TraceEvents(); evs != nil {
		t.Fatalf("tracing off, but events returned: %d", len(evs))
	}
	var buf bytes.Buffer
	if err := an.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("tracing off, but dump wrote %q", buf.String())
	}
}

func TestMetricsCountRuntimeEvents(t *testing.T) {
	an := analyzeObserved(t)
	// Several seeds: the Plug dynamic class's hazardous call paths depend
	// on virtual-dispatch choices, so one seed may not produce a UCP push.
	for seed := uint64(0); seed < 6; seed++ {
		if _, err := an.Run(seed, nil); err != nil {
			t.Fatal(err)
		}
	}
	m := an.Metrics()
	for _, name := range []string{
		obs.MetricVMCalls,
		obs.MetricVMReturns,
		obs.MetricVMEmits,
		obs.MetricEncoderAdditions,
		obs.MetricEncoderSIDSaves,
		obs.MetricEncoderSIDChecks,
		obs.MetricEncoderUCPPushes, // testSrc loads Plug dynamically
		obs.MetricGraphNodes,
		obs.MetricGraphEdges,
		obs.MetricMaxID,
		obs.MetricCPTSets,
	} {
		if m.Value(name) == 0 {
			t.Errorf("%s = 0 after an instrumented run", name)
		}
	}
	if calls, returns := m.Value(obs.MetricVMCalls), m.Value(obs.MetricVMReturns); calls != returns {
		t.Errorf("calls (%d) != returns (%d) on a fault-free run", calls, returns)
	}
}

func TestMetricsSharedAcrossSessions(t *testing.T) {
	an := analyzeObserved(t)
	if _, err := an.Run(1, nil); err != nil {
		t.Fatal(err)
	}
	first := an.Metrics().Value(obs.MetricVMCalls)
	if _, err := an.Run(2, nil); err != nil {
		t.Fatal(err)
	}
	second := an.Metrics().Value(obs.MetricVMCalls)
	if second <= first {
		t.Fatalf("second run did not aggregate into the registry: %d then %d", first, second)
	}
}

func TestMetricsExportShapes(t *testing.T) {
	an := analyzeObserved(t)
	if _, err := an.Run(1, nil); err != nil {
		t.Fatal(err)
	}
	var jsonBuf bytes.Buffer
	if err := an.Metrics().WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(jsonBuf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if _, ok := doc[obs.MetricVMCalls]; !ok {
		t.Errorf("JSON export is missing %s", obs.MetricVMCalls)
	}
	var promBuf bytes.Buffer
	if err := an.Metrics().WritePrometheus(&promBuf); err != nil {
		t.Fatal(err)
	}
	prom := promBuf.String()
	if !strings.Contains(prom, "# TYPE "+obs.MetricVMCalls+" counter") {
		t.Errorf("Prometheus export is missing the %s TYPE line", obs.MetricVMCalls)
	}
	if !strings.Contains(prom, obs.MetricEncoderPieceDepth+"_bucket{le=") {
		t.Errorf("Prometheus export is missing piece-depth histogram buckets")
	}
}

func TestTraceRecordsEncodingEvents(t *testing.T) {
	an := analyzeObserved(t)
	if _, err := an.Run(1, nil); err != nil {
		t.Fatal(err)
	}
	events := an.TraceEvents()
	if len(events) == 0 {
		t.Fatal("no trace events recorded")
	}
	kinds := make(map[string]int)
	for i, ev := range events {
		kinds[ev.Kind]++
		if i > 0 && events[i-1].Seq >= ev.Seq {
			t.Fatalf("events out of order: seq %d then %d", events[i-1].Seq, ev.Seq)
		}
	}
	for _, want := range []string{"call", "return", "emit"} {
		if kinds[want] == 0 {
			t.Errorf("no %q events in trace (kinds seen: %v)", want, kinds)
		}
	}
	var buf bytes.Buffer
	if err := an.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(events) {
		t.Errorf("dump has %d lines, Events returned %d", got, len(events))
	}
}

func TestProfileMetrics(t *testing.T) {
	an := analyzeObserved(t)
	p, err := an.RunParallel([]uint64{1, 2, 3, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := an.Metrics()
	if m.Value(obs.MetricProfileInterns) == 0 {
		t.Error("no interns counted after RunParallel")
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := an.DecodeProfile(&buf, 2); err != nil {
		t.Fatal(err)
	}
	if m.Value(obs.MetricProfileDecodeMemoMiss) == 0 {
		t.Error("no decode memo misses counted after DecodeProfile")
	}
	// The compiled decoder's tables are precomputed, so every lookup is a
	// hit and the miss counter (registered for legacy parity) stays zero.
	if m.Value(obs.MetricDecodeMemoHits) == 0 {
		t.Error("decoder table lookups not counted during profile decode")
	}
	if m.Value(obs.MetricDecodeMemoMisses) != 0 {
		t.Error("compiled decoder reported memo misses; its tables cannot miss")
	}
}
