package deltapath

import (
	"bytes"
	"fmt"
	"os"
	"testing"
)

// BenchmarkDecodeProfile measures parallel batch decode of a .dpp profile
// at several worker counts (sub-benchmark per count, so `-bench
// DecodeProfile` prints the scaling column directly).
func BenchmarkDecodeProfile(b *testing.B) {
	src, err := os.ReadFile("testdata/tasks.mv")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := ParseProgram(string(src))
	if err != nil {
		b.Fatal(err)
	}
	an, err := Analyze(prog, Options{})
	if err != nil {
		b.Fatal(err)
	}
	seeds := make([]uint64, 32)
	for i := range seeds {
		seeds[i] = uint64(i)
	}
	prof, err := an.RunParallel(seeds, nil)
	if err != nil {
		b.Fatal(err)
	}
	var dpp bytes.Buffer
	if err := prof.Save(&dpp); err != nil {
		b.Fatal(err)
	}
	data := dpp.Bytes()

	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := an.DecodeProfile(bytes.NewReader(data), workers)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Total != prof.Total() {
					b.Fatalf("report total %d, want %d", rep.Total, prof.Total())
				}
			}
		})
	}
}
