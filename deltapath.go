// Package deltapath is the public API of this repository: a complete
// implementation of "DeltaPath: Precise and Scalable Calling Context
// Encoding" (Zeng, Rhee, Zhang, Arora, Jiang, Liu — CGO 2014).
//
// DeltaPath tracks the calling context of a running program as a small
// integer maintained by constant-time additions at call sites, and decodes
// that integer — precisely and instantly — back into the exact sequence of
// active method invocations. Unlike its predecessors it supports
// object-oriented programs (one addition value per call site, even under
// dynamic dispatch), large programs (anchor nodes divide contexts so no
// integer ever overflows), and dynamic class loading (call path tracking
// detects unexpected call paths and keeps encodings correct).
//
// The pipeline mirrors the paper's implementation (Section 5):
//
//	program source (package lang / minivm)
//	    │  Analyze: call-graph construction (cha) + Algorithm 2 (core)
//	    ▼         + SID computation (cpt)
//	Analysis
//	    │  NewSession: bind addition values / anchors / SIDs to the
//	    ▼  program's call sites and method entries (instrument)
//	Session ──── Run / probes ───▶ per-emit Context records
//	    │  Decode: invert an encoding into the exact method sequence
//	    ▼
//	[]Frame (with explicit gaps where unanalysed code ran)
//
// Quick start:
//
//	prog, _ := deltapath.ParseProgram(src)
//	an, _ := deltapath.Analyze(prog, deltapath.Options{})
//	contexts, _ := an.Run(0, nil)
//	for _, c := range contexts {
//	    names, _ := an.Decode(c)
//	    fmt.Println(strings.Join(names, " > "))
//	}
//
// See the examples directory for event logging, context-sensitive
// profiling, and dynamic-class-loading scenarios, and cmd/dpbench for the
// full reproduction of the paper's evaluation.
package deltapath

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deltapath/internal/analysisio"
	"deltapath/internal/callgraph"
	"deltapath/internal/cha"
	"deltapath/internal/chaos"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
	"deltapath/internal/instrument"
	"deltapath/internal/lang"
	"deltapath/internal/minivm"
	"deltapath/internal/obs"
	"deltapath/internal/profile"
	"deltapath/internal/rta"
	"deltapath/internal/verify"
)

// Sentinel decode errors, re-exported so callers can distinguish a corrupt
// encoding (a damaged record, or a record decoded against the wrong
// analysis) from API misuse. Match with errors.Is.
var (
	ErrCorruptEncoding = encoding.ErrCorruptEncoding
	ErrNoMatchingEdge  = encoding.ErrNoMatchingEdge
	ErrResidualID      = encoding.ErrResidualID
)

// Program is a minivm program (re-exported for API convenience).
type Program = minivm.Program

// MethodRef names a method: Class.method.
type MethodRef = minivm.MethodRef

// ParseProgram parses the textual program form (see package lang for the
// grammar).
func ParseProgram(src string) (*Program, error) { return lang.Parse(src) }

// Options configures Analyze.
type Options struct {
	// ApplicationOnly selects the encoding-application setting
	// (Section 4.2): library classes are excluded from analysis and
	// instrumentation, and call path tracking bridges the gaps.
	ApplicationOnly bool

	// DisableCPT turns call path tracking off. Only safe for programs
	// with no dynamic class loading and full instrumentation; kept for
	// overhead experiments.
	DisableCPT bool

	// MaxID caps the encoding integer (inclusive). Zero means 2^63-1.
	// Algorithm 2 introduces anchor nodes as needed to respect it.
	MaxID uint64

	// TargetMethods, when non-empty, enables the pruned encoding of
	// Section 8 (Future Work): only methods that can reach one of the
	// targets ("Class.method" names) — plus the targets themselves —
	// are encoded; everything else is skipped, with call path tracking
	// keeping the remaining contexts exact. Requires call path tracking
	// (incompatible with DisableCPT).
	TargetMethods []string

	// TrunkAnchors forces the named methods to be anchor nodes — the
	// DeltaPath half of Section 8's hybrid encoding, where profiling
	// identifies hot "trunk" functions and contexts are encoded relative
	// to them.
	TrunkAnchors []string

	// GraphBuilder selects the call-graph construction algorithm the
	// analysis is built over. The default (GraphCHA) instruments every
	// statically loaded method, matching a Java agent; GraphRTA grows the
	// graph from the entry by on-the-fly reachability — tighter encoding
	// space, but methods only dynamic code can reach are left to call path
	// tracking, so it requires CPT (incompatible with DisableCPT).
	GraphBuilder GraphBuilder
}

// GraphBuilder names a call-graph construction algorithm (see
// Options.GraphBuilder).
type GraphBuilder int

const (
	// GraphCHA: class hierarchy analysis over every statically loaded
	// method (internal/cha), the paper's WALA-equivalent default.
	GraphCHA GraphBuilder = iota
	// GraphRTA: on-the-fly reachability from the entry (internal/rta);
	// strictly no more nodes or edges than GraphCHA.
	GraphRTA
)

func (b GraphBuilder) String() string {
	if b == GraphRTA {
		return "rta"
	}
	return "cha"
}

// Analysis is the static-analysis product: everything needed to run a
// program with encoding probes and to decode the results.
//
// An Analysis is versioned in epochs. Epoch 0 is the whole-program analysis
// Analyze produces; each successful Extend — absorbing dynamically loaded
// classes into the analysed world — publishes the next epoch as a new
// immutable snapshot behind an atomic pointer. Readers (sessions, decoders,
// profile pipelines) pin the epoch current when they start and never see a
// torn or half-updated analysis; contexts and profiles decode against the
// epoch they were captured under, forever.
type Analysis struct {
	prog *Program
	opts Options

	// cur is the current epoch; Extend swaps it atomically. Immutable once
	// published — all epoch fields are read-only after construction, safe
	// for concurrent use without locks.
	cur atomic.Pointer[epochState]
	// epochMu serializes Extend and guards epochs (every epoch ever
	// published, indexed by id). Published epochs are never dropped: old
	// profiles route to their recorded epoch through this list.
	epochMu sync.Mutex
	epochs  []*epochState

	// obsMu guards the observability state (see observe.go). obsReg/tracer
	// stay nil until EnableMetrics/EnableTracing — the no-op default.
	obsMu  sync.Mutex
	obsReg *obs.Registry
	tracer *obs.Tracer
}

// epochState is one immutable published analysis epoch: a consistent
// (graph, encoding, instrumentation plan, compiled decoder) snapshot.
type epochState struct {
	id      uint64
	build   *cha.Result
	result  *core.Result
	plan    *instrument.Plan
	decoder *encoding.CompiledDecoder
	digest  analysisio.GraphDigest
	// absorbed lists the dynamic classes analysed as of this epoch, in
	// absorption order (empty at epoch 0).
	absorbed []string
	// cert is the verifier's reusable proof state, set when this epoch
	// passed the soundness gate (nil at epoch 0, which Analyze publishes
	// unverified). The next Extend proves its delta against it via
	// verify.CheckDelta instead of a whole-graph pass.
	cert *verify.Certificate
}

// epoch returns the current epoch snapshot.
func (a *Analysis) epoch() *epochState { return a.cur.Load() }

// graphDigest returns the digest of the current epoch's call graph.
func (a *Analysis) graphDigest() analysisio.GraphDigest { return a.epoch().digest }

// GraphDigest describes the call graph the current epoch was built over
// (node/edge counts plus a content hash) — the compatibility key that .dpa
// analysis files and .dpp profiles carry.
func (a *Analysis) GraphDigest() string { return a.graphDigest().String() }

// Epoch reports the current analysis epoch: 0 until the first successful
// Extend, then incrementing by one per extension.
func (a *Analysis) Epoch() uint64 { return a.epoch().id }

// Absorbed returns the names of the dynamic classes incremental extensions
// have absorbed into the analysed world so far, in absorption order.
func (a *Analysis) Absorbed() []string {
	abs := a.epoch().absorbed
	out := make([]string, len(abs))
	copy(out, abs)
	return out
}

// Analyze builds the call graph, runs the DeltaPath encoding algorithm
// (Algorithm 2), computes SIDs for call path tracking, and resolves the
// instrumentation plan.
func Analyze(prog *Program, opts Options) (*Analysis, error) {
	setting := cha.EncodingAll
	if opts.ApplicationOnly {
		setting = cha.EncodingApplication
	}
	var exclude map[minivm.MethodRef]bool
	if len(opts.TargetMethods) > 0 {
		if opts.DisableCPT {
			return nil, fmt.Errorf("deltapath: pruned encoding requires call path tracking")
		}
		targets := make(map[minivm.MethodRef]bool, len(opts.TargetMethods))
		for _, name := range opts.TargetMethods {
			dot := strings.LastIndexByte(name, '.')
			if dot <= 0 || dot == len(name)-1 {
				return nil, fmt.Errorf("deltapath: target %q is not a Class.method name", name)
			}
			targets[minivm.MethodRef{Class: name[:dot], Method: name[dot+1:]}] = true
		}
		var err error
		if exclude, err = cha.PruneForTargets(prog, targets); err != nil {
			return nil, err
		}
	}
	// KeepUnreachable: a Java agent instruments every class it sees
	// loaded, including methods the static call graph considers
	// unreachable — which is what makes contexts decodable when dynamic
	// code calls into them (they become piece-start anchors). The RTA
	// builder deliberately gives that up for a tighter graph, so it leans
	// on call path tracking for any method it pruned.
	var build *cha.Result
	var err error
	buildOpts := cha.Options{
		Setting:         setting,
		KeepUnreachable: true,
		ExcludeMethods:  exclude,
	}
	switch opts.GraphBuilder {
	case GraphRTA:
		if opts.DisableCPT {
			return nil, fmt.Errorf("deltapath: the RTA graph builder requires call path tracking")
		}
		build, err = rta.Build(prog, buildOpts)
	default:
		build, err = cha.Build(prog, buildOpts)
	}
	if err != nil {
		return nil, err
	}
	var force []callgraph.NodeID
	for _, name := range opts.TrunkAnchors {
		n := build.Graph.Lookup(name)
		if n == callgraph.InvalidNode {
			return nil, fmt.Errorf("deltapath: trunk anchor %q is not in the call graph", name)
		}
		force = append(force, n)
	}
	res, err := core.Encode(build.Graph, core.Options{MaxID: opts.MaxID, ForceAnchors: force})
	if err != nil {
		return nil, err
	}
	var cptPlan *cpt.Plan
	if !opts.DisableCPT {
		cptPlan = cpt.Compute(build.Graph)
	}
	plan, err := instrument.NewPlan(build, res.Spec, cptPlan)
	if err != nil {
		return nil, err
	}
	a := &Analysis{prog: prog, opts: opts}
	a.publish(&epochState{
		build:   build,
		result:  res,
		plan:    plan,
		decoder: encoding.Compile(res.Spec),
		digest:  analysisio.DigestGraph(build.Graph),
	})
	return a, nil
}

// publish registers ep as the next epoch and makes it current. Callers other
// than Analyze (which runs before the Analysis escapes) must hold epochMu.
func (a *Analysis) publish(ep *epochState) {
	ep.id = uint64(len(a.epochs))
	a.epochs = append(a.epochs, ep)
	a.cur.Store(ep)
}

// epochByDigest finds the published epoch whose call graph carries the given
// digest — the router profile decoding uses: each extension changes the
// graph and therefore the digest, so the digest a .dpp header records
// identifies its epoch. Needs epochMu.
func (a *Analysis) epochByDigest(d analysisio.GraphDigest) *epochState {
	for _, ep := range a.epochs {
		if ep.digest == d {
			return ep
		}
	}
	return nil
}

// ExtendStats reports what one Analysis.Extend did: the epoch it published,
// the classes it absorbed, and how much of the encoding the incremental pass
// actually recomputed (the win over a from-scratch re-analysis).
type ExtendStats struct {
	// Epoch is the id of the published epoch.
	Epoch uint64 `json:"epoch"`
	// NewClasses lists the dynamic classes this call absorbed (including
	// super-closure additions), in absorption order. Empty when every
	// requested class was already absorbed — the call was a no-op and
	// Epoch is the unchanged current epoch.
	NewClasses []string `json:"new_classes,omitempty"`
	// Core carries the incremental encoder's dirty-territory counters.
	Core core.ExtendStats `json:"core"`
	// VerifyNs is the wall time the soundness gate spent proving the new
	// epoch; VerifyDelta reports whether it proved incrementally against
	// the previous epoch's certificate (false on the first extension, and
	// on fallback when the certificate went stale).
	VerifyNs    int64 `json:"verify_ns"`
	VerifyDelta bool  `json:"verify_delta"`
	// DirtyTerritories of TotalTerritories were re-proven by the gate, and
	// ObligationsChecked of ObligationsTotal interval obligations actually
	// re-derived — the gate's proof reuse (equal when the gate ran a full
	// pass).
	DirtyTerritories   int `json:"dirty_territories"`
	TotalTerritories   int `json:"total_territories"`
	ObligationsChecked int `json:"obligations_checked"`
	ObligationsTotal   int `json:"obligations_total"`
}

// Extend absorbs dynamically loaded classes into the analysed world and
// publishes the result as the next analysis epoch. It is the paper's answer
// to dynamic class loading made incremental: instead of tolerating unknown
// code through call path tracking forever (sound, but every entry into
// dynamic code costs a hazard check and an encoding gap), the analysis
// re-models the named classes as ordinary graph nodes — recomputing addition
// values, anchors and SIDs only for the dirty territory of the delta — so
// subsequent runs encode through them with zero hazards and no gaps.
//
// Classes must name dynamic classes of the analysed program; superclasses
// are absorbed automatically (the VM loads supers first). Classes already
// absorbed are skipped — extending with an absorbed set is a no-op, not an
// error — and if nothing remains the current epoch is returned unchanged.
//
// The new epoch is verified (internal/verify) before it is published: a
// delta that fails the soundness certificate is rejected and the current
// epoch stays in place, untouched. Publication is atomic — in-flight
// sessions, decoders and profile pipelines keep the epoch they pinned, and
// never observe a half-updated analysis. Existing sessions keep encoding
// under their old epoch until Session.Adopt moves them forward; profiles
// saved under any earlier epoch decode forever (DecodeProfile routes each
// .dpp to the epoch whose digest it records).
//
// Extend calls are serialized; concurrent calls queue. It is incompatible
// with the RTA graph builder and with pruned (target-method) encodings.
func (a *Analysis) Extend(classes ...string) (*ExtendStats, error) {
	if a.opts.GraphBuilder == GraphRTA {
		return nil, fmt.Errorf("deltapath: Extend requires the CHA graph builder (RTA graphs grow from the entry and cannot absorb unreachable classes)")
	}
	if len(a.opts.TargetMethods) > 0 {
		return nil, fmt.Errorf("deltapath: Extend does not support pruned (target-method) encodings")
	}
	a.epochMu.Lock()
	defer a.epochMu.Unlock()
	cur := a.cur.Load()

	// Super-closure expansion, oldest ancestor first: absorbing Sub without
	// its dynamic super Base would leave Sub's inherited dispatch dangling.
	have := make(map[string]bool, len(cur.absorbed))
	for _, name := range cur.absorbed {
		have[name] = true
	}
	var fresh []string
	var addClosure func(name string) error
	addClosure = func(name string) error {
		if have[name] {
			return nil
		}
		c := a.prog.Class(name)
		if c == nil {
			return fmt.Errorf("deltapath: class %q is not in the program", name)
		}
		if dyn := dynamicClassOf(a.prog, name); dyn == nil {
			// Static classes are analysed from epoch 0; absorbing one is
			// a no-op, matching the already-absorbed rule.
			return nil
		}
		if c.Super != "" && dynamicClassOf(a.prog, c.Super) != nil {
			if err := addClosure(c.Super); err != nil {
				return err
			}
		}
		have[name] = true
		fresh = append(fresh, name)
		return nil
	}
	for _, name := range classes {
		if err := addClosure(name); err != nil {
			return nil, err
		}
	}
	if len(fresh) == 0 {
		return &ExtendStats{Epoch: cur.id}, nil
	}
	absorbed := append(append([]string(nil), cur.absorbed...), fresh...)

	setting := cha.EncodingAll
	if a.opts.ApplicationOnly {
		setting = cha.EncodingApplication
	}
	build, err := cha.Extend(cur.build, a.prog, absorbed, cha.Options{
		Setting:         setting,
		KeepUnreachable: true,
	})
	if err != nil {
		return nil, err
	}
	res, coreStats, err := core.Extend(cur.result, build.Graph, core.Options{MaxID: a.opts.MaxID})
	if err != nil {
		return nil, err
	}
	var cptPlan *cpt.Plan
	if !a.opts.DisableCPT {
		cptPlan = cpt.Compute(build.Graph)
	}
	// The soundness gate: re-prove the delta before anyone can see it. On
	// any finding the current epoch stays published — callers keep a fully
	// working (if hazard-paying) analysis. When the previous epoch carries
	// a certificate the gate proves incrementally — only the dirty
	// territories re-derive — and falls back to the whole-graph pass if the
	// certificate is stale (a stale certificate costs time, never
	// soundness). Reject-whole semantics are identical either way:
	// CheckDelta accepts exactly when Check would.
	verifyStart := time.Now()
	var rep *verify.Report
	verifyDelta := false
	if cur.cert != nil {
		if drep, derr := verify.CheckDelta(cur.cert, res.Spec, cptPlan,
			coreStats.DirtyTerritoryList, verify.Options{}); derr == nil {
			rep, verifyDelta = drep, true
		}
	}
	if rep == nil {
		rep = verify.Check(res.Spec, cptPlan, verify.Options{})
	}
	verifyNs := time.Since(verifyStart).Nanoseconds()
	if !rep.Clean() {
		rep.Source = fmt.Sprintf("extend epoch %d", cur.id+1)
		return nil, fmt.Errorf("deltapath: extension rejected, keeping epoch %d: verification failed:\n%s",
			cur.id, strings.TrimRight(rep.Text(), "\n"))
	}
	plan, err := instrument.NewPlanFrom(build, res.Spec, cptPlan, cur.plan)
	if err != nil {
		return nil, err
	}
	ep := &epochState{
		build:    build,
		result:   res,
		plan:     plan,
		decoder:  encoding.Compile(res.Spec),
		digest:   analysisio.DigestGraph(build.Graph),
		absorbed: absorbed,
		cert:     rep.Certificate,
	}
	a.publish(ep)
	a.epochGauges(ep)
	stats := &ExtendStats{
		Epoch:       ep.id,
		NewClasses:  fresh,
		Core:        *coreStats,
		VerifyNs:    verifyNs,
		VerifyDelta: verifyDelta,
	}
	stats.TotalTerritories = rep.Stats.PieceStarts
	if rep.Delta != nil {
		stats.DirtyTerritories = rep.Delta.DirtyTerritories
		stats.ObligationsChecked = rep.Delta.ObligationsChecked
		stats.ObligationsTotal = rep.Delta.ObligationsTotal
	} else {
		stats.DirtyTerritories = rep.Stats.PieceStarts
		stats.ObligationsChecked = rep.Stats.IntervalsChecked
		stats.ObligationsTotal = rep.Stats.IntervalsChecked
	}
	return stats, nil
}

func dynamicClassOf(prog *Program, name string) *minivm.Class {
	for _, c := range prog.Dynamic {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Anchors returns the names of the overflow anchor nodes Algorithm 2 added
// (under the current epoch).
func (a *Analysis) Anchors() []string {
	e := a.epoch()
	out := make([]string, 0, len(e.result.OverflowAnchors))
	for _, n := range e.result.OverflowAnchors {
		out = append(out, e.build.Graph.Name(n))
	}
	return out
}

// MaxID returns the largest encoding ID any context can produce under the
// current epoch — the static encoding-space requirement.
func (a *Analysis) MaxID() uint64 { return a.epoch().result.MaxID }

// NumInstrumentedSites reports how many call sites carry instrumentation
// under the current epoch.
func (a *Analysis) NumInstrumentedSites() int { return a.epoch().plan.NumInstrumentedSites() }

// Context is one captured calling-context encoding: the state snapshot plus
// the program point where it was captured. A context pins the analysis epoch
// it was captured under, and decodes against that epoch even after later
// extensions.
type Context struct {
	// At is the method containing the emit point.
	At MethodRef
	// Tag is the emit point's tag.
	Tag   string
	state *encoding.State
	node  callgraph.NodeID
	known bool
	ep    *epochState
}

// Epoch reports the analysis epoch the context was captured under.
func (c Context) Epoch() uint64 {
	if c.ep == nil {
		return 0
	}
	return c.ep.id
}

// Session couples a VM with a DeltaPath encoder, ready to run. A session is
// pinned to the analysis epoch current when it was created (or last adopted
// via Adopt): extensions published while it runs do not disturb it.
type Session struct {
	an *Analysis
	vm *minivm.VM
	// mu guards the fields an Adopt swaps (ep, enc, inj). The probe path
	// does not take it — the VM calls one encoder for a whole Run, and
	// Adopt's contract is "not concurrent with Run".
	mu        sync.Mutex
	ep        *epochState
	enc       *instrument.Encoder
	inj       *chaos.Injector // non-nil after EnableChaos
	chaosOpts *ChaosOptions   // remembered so Adopt can re-arm injection
	// heal routes every emit through the self-healing protocol (verify the
	// encoding against the VM stack, resync on mismatch). Set by
	// EnableChaos, and by a mid-run Adopt: frames already on the stack at
	// an epoch swap carry probe tokens minted under the old plan, and as
	// they unwind their pops/subtractions can drift the new encoder's
	// state by a bounded amount — the emit-time check repairs it before
	// any context is captured, the same guarantee chaos runs rely on.
	heal bool
}

// ChaosOptions configures deterministic fault injection for a session.
type ChaosOptions struct {
	// Seed drives the fault stream; same seed, same faults.
	Seed uint64
	// Rate is the per-probe-event fault probability.
	Rate float64
}

// EnableChaos turns the session into a fault-injection run: probe events
// are routed through a seeded injector (dropped events, encoding-ID bit
// flips, piece-stack truncation, unknown call sites), and the self-healing
// protocol runs at every emit point — an invariant check of the encoding
// against the VM's stack, with a stack-walk resync on any detected
// corruption — so every captured context is exact despite the faults.
// Call before Run; Health reports what happened.
func (s *Session) EnableChaos(opts ChaosOptions) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chaosOpts = &opts
	s.armChaos()
}

// armChaos wraps the current encoder in a fresh injector. Needs s.mu.
func (s *Session) armChaos() {
	s.inj = chaos.NewInjector(s.enc, chaos.Config{Seed: s.chaosOpts.Seed, Rate: s.chaosOpts.Rate})
	s.enc.SetDecoder(s.ep.decoder)
	s.vm.SetProbes(s.inj)
}

// Health reports the session's graceful-degradation counters.
type Health struct {
	// Resyncs counts stack-walk resynchronizations.
	Resyncs uint64
	// CorruptionsDetected counts invariant-checker detections (mismatches,
	// typed decode errors, unbalanced pops).
	CorruptionsDetected uint64
	// DroppedEvents counts probe events the injector suppressed.
	DroppedEvents uint64
	// PartialDecodes counts best-effort decodes that salvaged only a
	// suffix of a corrupt context.
	PartialDecodes uint64
	// FaultsInjected counts injected faults; ProbeEvents counts the probe
	// events that flowed through the injector. Both zero without chaos.
	FaultsInjected uint64
	ProbeEvents    uint64
}

// Health returns the session's health counters. After Adopt the counters
// restart at zero: they describe the current epoch's encoder.
func (s *Session) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{
		Resyncs:             s.enc.Health.Resyncs,
		CorruptionsDetected: s.enc.Health.CorruptionsDetected,
		DroppedEvents:       s.enc.Health.DroppedEvents,
		PartialDecodes:      s.enc.Health.PartialDecodes,
	}
	if s.inj != nil {
		h.FaultsInjected = s.inj.TotalInjected()
		h.ProbeEvents = s.inj.Events()
	}
	return h
}

// NewSession prepares an instrumented execution of the analysed program,
// pinned to the current analysis epoch. seed drives virtual-dispatch choices
// deterministically.
func (a *Analysis) NewSession(seed uint64) (*Session, error) {
	vm, err := minivm.NewVM(a.prog, seed)
	if err != nil {
		return nil, err
	}
	ep := a.epoch()
	enc := instrument.NewEncoder(ep.plan)
	if reg, tr := a.observability(); reg != nil {
		enc.Observe(reg, tr)
		vm.Observe(reg, tr)
	}
	vm.SetProbes(enc)
	vm.SetInstrumented(ep.plan.InstrumentedMethods())
	vm.MarkAnalyzed(ep.absorbed...)
	return &Session{an: a, vm: vm, ep: ep, enc: enc}, nil
}

// VM exposes the underlying virtual machine (e.g. for ground-truth stack
// walks in tests and experiments).
func (s *Session) VM() *minivm.VM { return s.vm }

// Epoch reports the analysis epoch the session is encoding under.
func (s *Session) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ep.id
}

// Hazards reports how many hazardous unexpected call paths the run
// detected (since the session started, or since the last Adopt).
func (s *Session) Hazards() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Hazards
}

// Adopt moves the session forward to the analysis's current epoch: the VM's
// probes are rebound to the new instrumentation plan, newly absorbed classes
// stop counting as dynamic (their calls encode instead of costing hazard
// checks), and — when the VM is mid-run — the encoding state is rebuilt from
// the VM's stack so the very next probe event continues under the new epoch
// with an exact context. Chaos injection, if enabled, is re-armed around the
// new encoder with the original options.
//
// Adopt must not run concurrently with Run on the same session (the VM's
// OnEmit callbacks would race the swap); call it before Run, or from within
// an OnEmit callback, where the VM is quiescent. It reports whether the
// session actually moved (false when already at the current epoch). Health
// counters and Hazards restart at zero with the new encoder.
func (s *Session) Adopt() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ep := s.an.epoch()
	if ep == s.ep {
		return false
	}
	enc := instrument.NewEncoder(ep.plan)
	if reg, tr := s.an.observability(); reg != nil {
		enc.Observe(reg, tr)
	}
	prev := s.ep
	s.ep = ep
	s.enc = enc
	s.vm.SetProbes(enc)
	s.vm.SetInstrumented(ep.plan.InstrumentedMethods())
	s.vm.MarkAnalyzed(ep.absorbed[len(prev.absorbed):]...)
	if s.chaosOpts != nil {
		s.armChaos()
	}
	if s.vm.Depth() > 0 {
		// Mid-run adoption: the old encoder's state is meaningless under
		// the new addition values, so rebuild from the ground truth.
		enc.SetDecoder(ep.decoder)
		enc.Resync(s.vm)
		// Frames already on the stack hold probe tokens minted under the
		// previous plan; as they unwind, their return-side pops and
		// subtractions can disagree with the rebuilt state (a push the old
		// spec emitted and the new one would not, or an addition value the
		// resync attributed to a different same-callee site). Route the
		// rest of the run through the self-healing emit check so every
		// captured context stays exact while the old frames drain.
		s.heal = true
	}
	return true
}

// Capture snapshots the current encoding at an emit point. It is intended
// to be called from an OnEmit callback.
func (s *Session) Capture(at MethodRef, tag string) Context {
	s.mu.Lock()
	ep, enc := s.ep, s.enc
	s.mu.Unlock()
	node, known := ep.build.NodeOf[at]
	return Context{
		At:    at,
		Tag:   tag,
		state: enc.State().Snapshot(),
		node:  node,
		known: known,
		ep:    ep,
	}
}

// Run executes the program. If onEmit is non-nil it receives a captured
// Context at every emit point; otherwise all contexts are collected and
// returned.
func (s *Session) Run(onEmit func(Context)) ([]Context, error) {
	var collected []Context
	s.vm.OnEmit = func(_ *minivm.VM, m MethodRef, tag string) {
		s.mu.Lock()
		ep, enc, inj, heal := s.ep, s.enc, s.inj, s.heal
		s.mu.Unlock()
		if inj != nil || heal {
			// Self-healing protocol: verify the encoding against the
			// VM's stack before capturing, resyncing on corruption, so
			// the captured context is exact despite injected faults.
			if _, known := ep.build.NodeOf[m]; known {
				enc.VerifyAndResync(s.vm)
			}
		}
		c := s.Capture(m, tag)
		if onEmit != nil {
			onEmit(c)
		} else {
			collected = append(collected, c)
		}
	}
	if err := s.vm.Run(); err != nil {
		return nil, err
	}
	return collected, nil
}

// Run is the convenience path: analyze-once callers that just want every
// context of one execution. It creates a session and runs it.
func (a *Analysis) Run(seed uint64, onEmit func(Context)) ([]Context, error) {
	s, err := a.NewSession(seed)
	if err != nil {
		return nil, err
	}
	return s.Run(onEmit)
}

// Decode recovers the exact calling context of a captured encoding, from
// the program entry to the capture point. Gaps — stretches of dynamically
// loaded or excluded code the encoding intentionally does not track — are
// rendered as "...". A context decodes against the epoch it was captured
// under, even after later extensions: encodings are meaningful only relative
// to their epoch's addition values.
func (a *Analysis) Decode(c Context) ([]string, error) {
	if !c.known {
		return nil, fmt.Errorf("deltapath: emit point %s is outside the analysed program", c.At)
	}
	return c.decoderOr(a).DecodeNames(c.state, c.node)
}

// decoderOr returns the decoder of the context's pinned epoch, or a's
// current decoder for contexts without one (the zero Context).
func (c Context) decoderOr(a *Analysis) *encoding.CompiledDecoder {
	if c.ep != nil {
		return c.ep.decoder
	}
	return a.epoch().decoder
}

// DecodeBestEffort is the degraded-mode counterpart of Decode: it never
// fails on a corrupt encoding, instead returning the longest decodable
// suffix of the context with an explicit "..." gap standing in for the
// unrecoverable prefix. complete reports whether the whole context decoded
// (in which case the result equals Decode's). The error is non-nil only
// for API misuse (an emit point outside the analysed program).
func (a *Analysis) DecodeBestEffort(c Context) (names []string, complete bool, err error) {
	if !c.known {
		return nil, false, fmt.Errorf("deltapath: emit point %s is outside the analysed program", c.At)
	}
	dec := c.decoderOr(a)
	frames, complete := dec.DecodeBestEffort(c.state, c.node)
	return dec.Names(frames), complete, nil
}

// DecodeBytesBestEffort decodes a context record with best-effort
// semantics: a corrupt record yields the longest decodable suffix (behind a
// "..." gap) rather than an error. Only a structurally unreadable record —
// one UnmarshalContext rejects — returns an error.
func (a *Analysis) DecodeBytesBestEffort(record []byte) (names []string, complete bool, err error) {
	st, end, err := encoding.UnmarshalContext(record)
	if err != nil {
		return nil, false, err
	}
	dec := a.epoch().decoder
	frames, complete := dec.DecodeBestEffort(st, end)
	return dec.Names(frames), complete, nil
}

// Key returns the canonical encoding key of a context: equal keys decode to
// equal contexts, so keys serve as exact context identifiers for profiling
// and logging.
func (c Context) Key() string {
	if !c.known {
		return "?" + c.At.String()
	}
	return c.state.Key(c.node)
}

// StackDepth reports the number of encoding pieces representing the
// context (Table 2's stack metric).
func (c Context) StackDepth() int { return c.state.Depth() }

// ID returns the current encoding integer of the context's deepest piece.
func (c Context) ID() uint64 { return c.state.ID }

// MarshalBinary serializes a captured context into a compact binary record
// (typically a handful of bytes): the persistence format for event logs.
// Records from unanalysed emit points cannot be serialized.
func (c Context) MarshalBinary() ([]byte, error) {
	if !c.known {
		return nil, fmt.Errorf("deltapath: emit point %s is outside the analysed program", c.At)
	}
	return encoding.MarshalContext(c.state, c.node), nil
}

// DecodeBytes decodes a context record produced by Context.MarshalBinary
// under this analysis's current epoch. The analysis (and epoch) must be the
// one — or an identical rerun of the one — that produced the record:
// encodings are meaningful only relative to their addition values.
func (a *Analysis) DecodeBytes(record []byte) ([]string, error) {
	st, end, err := encoding.UnmarshalContext(record)
	if err != nil {
		return nil, err
	}
	return a.epoch().decoder.DecodeNames(st, end)
}

// SaveAnalysis persists the current epoch's analysis — call graph, addition
// values, anchors, SIDs, and the epoch id — so that context records can be
// decoded later by any host holding the file, without the program and
// without re-analysis (see LoadDecoder and cmd/dpdecode -analysis). An
// epoch-0 analysis saves in the pre-epoch format, byte-identical with
// earlier builds.
func (a *Analysis) SaveAnalysis(w io.Writer) error {
	e := a.epoch()
	return analysisio.SaveEpoch(w, e.result.Spec, e.plan.CPT, e.id)
}

// VerifyEncoding statically certifies the encoding this analysis produced:
// addition-value intervals pairwise disjoint (every context ID decodes to
// exactly one path), every recursive cycle anchored, piece capacities
// within the integer limit, SID sets closed under the hazard rules. It is
// the programmatic form of cmd/dplint; a nil return is a soundness
// certificate for every execution, not just the ones the tests ran. The
// returned error lists every finding.
func (a *Analysis) VerifyEncoding() error {
	e := a.epoch()
	rep := verify.Check(e.result.Spec, e.plan.CPT, verify.Options{})
	if rep.Clean() {
		return nil
	}
	rep.Source = "analysis"
	return fmt.Errorf("deltapath: encoding verification failed:\n%s", strings.TrimRight(rep.Text(), "\n"))
}

// OfflineDecoder decodes context records against a persisted analysis.
type OfflineDecoder struct {
	bundle  *analysisio.Bundle
	decoder *encoding.CompiledDecoder
}

// LoadDecoder restores a persisted analysis for offline decoding.
func LoadDecoder(r io.Reader) (*OfflineDecoder, error) {
	bundle, err := analysisio.Load(r)
	if err != nil {
		return nil, err
	}
	return &OfflineDecoder{bundle: bundle, decoder: encoding.Compile(bundle.Spec)}, nil
}

// DecodeBytes decodes a context record produced under the persisted
// analysis.
func (d *OfflineDecoder) DecodeBytes(record []byte) ([]string, error) {
	st, end, err := encoding.UnmarshalContext(record)
	if err != nil {
		return nil, err
	}
	return d.decoder.DecodeNames(st, end)
}

// DecodeBytesBestEffort decodes a context record with best-effort
// semantics (see Analysis.DecodeBytesBestEffort).
func (d *OfflineDecoder) DecodeBytesBestEffort(record []byte) (names []string, complete bool, err error) {
	st, end, err := encoding.UnmarshalContext(record)
	if err != nil {
		return nil, false, err
	}
	frames, complete := d.decoder.DecodeBestEffort(st, end)
	return d.decoder.Names(frames), complete, nil
}

// GraphDigest describes the call graph the persisted analysis was built
// over (node/edge counts plus a content hash).
func (d *OfflineDecoder) GraphDigest() string { return d.bundle.Digest.String() }

// Epoch reports the analysis epoch the persisted analysis was saved at (0
// for whole-program analyses and pre-epoch files).
func (d *OfflineDecoder) Epoch() uint64 { return d.bundle.Epoch }

// CheckAnalysis verifies that a freshly built analysis (at its current
// epoch) matches the persisted one — the guard against decoding records
// from one program version against the analysis of another. It compares the
// live call graph's digest with the digest stored in the analysis file.
func (d *OfflineDecoder) CheckAnalysis(a *Analysis) error {
	return d.bundle.CheckGraph(a.epoch().build.Graph)
}

// --- Concurrent profile pipeline ---
//
// The paper's premise is that a calling context is a small integer, so
// collecting and aggregating millions of contexts should cost almost
// nothing. The profile pipeline delivers that: concurrent sessions intern
// their contexts into one sharded store (Profile), the aggregate streams to
// disk as a compact .dpp file (Profile.Save), and decoding fans the stored
// records over a worker pool into a hot-context report (DecodeProfile).

// ProfileReport is a decoded profile: every distinct calling context with
// its aggregate count, hottest first (fully deterministic order).
type ProfileReport = profile.Report

// HotContext is one row of a ProfileReport.
type HotContext = profile.HotContext

// ProfileRecord is one interned record of a Profile (see Profile.Records).
type ProfileRecord = profile.Record

// Profile aggregates captured contexts into a sharded context-interning
// store. All methods are safe for concurrent use: many sessions — or many
// goroutines of one collector — feed a single Profile without contending
// on a single lock.
type Profile struct {
	an      *Analysis
	ep      *epochState
	store   *profile.Store
	skipped atomic.Uint64
}

// NewProfile returns an empty profile for contexts captured under this
// analysis's current epoch. shards is rounded up to a power of two; <= 0
// selects the default (64). An encoding is only meaningful relative to its
// epoch's addition values, so a profile aggregates one epoch: contexts
// captured under a different epoch are skipped by Add, and the saved .dpp
// records this epoch's digest and id.
func (a *Analysis) NewProfile(shards int) *Profile {
	store := profile.NewStore(shards)
	if reg, _ := a.observability(); reg != nil {
		store.Observe(reg)
	}
	return &Profile{an: a, ep: a.epoch(), store: store}
}

// Epoch reports the analysis epoch the profile aggregates.
func (p *Profile) Epoch() uint64 { return p.ep.id }

// Add records one hit of the captured context. Contexts that cannot join
// the profile — captured at emit points outside the analysed program, or
// under a different analysis epoch than the profile's — are counted as
// skipped; Add reports whether the context was recorded.
func (p *Profile) Add(c Context) bool {
	if c.ep != nil && c.ep != p.ep {
		p.skipped.Add(1)
		return false
	}
	rec, err := c.MarshalBinary()
	if err != nil {
		p.skipped.Add(1)
		return false
	}
	p.store.Intern(rec)
	return true
}

// Unique reports the number of distinct contexts recorded.
func (p *Profile) Unique() uint64 { return p.store.Unique() }

// Total reports the aggregate hit count across all contexts.
func (p *Profile) Total() uint64 { return p.store.Total() }

// Skipped reports how many contexts Add rejected (unanalysed emit points,
// or contexts from another epoch).
func (p *Profile) Skipped() uint64 { return p.skipped.Load() }

// Records returns the interned records with their counts in deterministic
// (record-byte) order — the raw data Save streams out.
func (p *Profile) Records() []ProfileRecord { return p.store.Snapshot() }

// Save streams the profile to w in the binary .dpp format: a header
// carrying the profile's epoch — its graph digest and epoch id — then one
// varint-encoded record per distinct context with its count. DecodeProfile
// refuses a .dpp whose digest matches no epoch of the analysis in hand,
// exactly as loading a .dpa analysis file refuses a tampered payload.
// Epoch-0 profiles save in the pre-epoch format, byte-identical with
// earlier builds.
func (p *Profile) Save(w io.Writer) error {
	pw, err := profile.NewWriterEpoch(w, p.ep.digest, p.ep.id)
	if err != nil {
		return err
	}
	if err := pw.WriteSnapshot(p.store); err != nil {
		return err
	}
	return pw.Flush()
}

// Collect runs one concurrent session per seed, interning every emitted
// context into the profile. configure (may be nil) is invoked on each
// session before it runs — e.g. to enable chaos injection, so counts from
// fault-injected runs merge into the same store. onEmit (may be nil) is
// invoked for every recorded context, concurrently from multiple sessions.
// The first session error is returned after every session has finished.
func (p *Profile) Collect(seeds []uint64, configure func(seed uint64, s *Session), onEmit func(Context)) error {
	return p.CollectContext(context.Background(), seeds, configure, onEmit)
}

// CollectContext is Collect with cancellation: sessions whose run has not
// started when ctx is cancelled are skipped, and the call returns ctx.Err()
// once the in-flight sessions finish. (A session already executing runs to
// completion — the VM has no preemption point — so cancellation bounds new
// work, not the longest single run.)
func (p *Profile) CollectContext(ctx context.Context, seeds []uint64, configure func(seed uint64, s *Session), onEmit func(Context)) error {
	var wg sync.WaitGroup
	errs := make(chan error, len(seeds))
	for _, seed := range seeds {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			if ctx.Err() != nil {
				return // cancelled before this session started
			}
			s, err := p.an.NewSession(seed)
			if err != nil {
				errs <- fmt.Errorf("seed %d: %w", seed, err)
				return
			}
			if configure != nil {
				configure(seed, s)
			}
			if ctx.Err() != nil {
				return
			}
			if _, err := s.Run(func(c Context) {
				p.Add(c)
				if onEmit != nil {
					onEmit(c)
				}
			}); err != nil {
				errs <- fmt.Errorf("seed %d: %w", seed, err)
			}
		}(seed)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}
	return ctx.Err()
}

// RunParallel executes the program once per seed, concurrently — the
// Figure 8 worker pattern, with each session keeping its encoding state
// thread-local exactly as the paper's implementation does — and aggregates
// every emitted context into one Profile. onEmit (may be nil) observes
// recorded contexts as they arrive, concurrently.
func (a *Analysis) RunParallel(seeds []uint64, onEmit func(Context)) (*Profile, error) {
	return a.RunParallelContext(context.Background(), seeds, onEmit)
}

// RunParallelContext is RunParallel with cancellation (see CollectContext
// for the exact semantics): a server shutting down cancels ctx and the
// worker pool stops starting new sessions.
func (a *Analysis) RunParallelContext(ctx context.Context, seeds []uint64, onEmit func(Context)) (*Profile, error) {
	p := a.NewProfile(0)
	if err := p.CollectContext(ctx, seeds, nil, onEmit); err != nil {
		return nil, err
	}
	return p, nil
}

// ctxBuf is the per-worker scratch of the profile decode pipeline: a frame
// buffer DecodeInto reuses and a string builder for the rendered context.
// Pooled so steady-state record decoding allocates only the output string.
type ctxBuf struct {
	frames []encoding.Frame
	sb     strings.Builder
}

var ctxBufPool = sync.Pool{New: func() any { return new(ctxBuf) }}

// decodeProfileStream is the shared implementation of DecodeProfile: route
// the profile's recorded (digest, epoch) to a decoder via lookup, then fan
// the records over a worker pool decoding through the compiled flat tables.
func decodeProfileStream(ctx context.Context, r io.Reader, workers int, lookup func(analysisio.GraphDigest, uint64) (*encoding.CompiledDecoder, error), reg *obs.Registry) (*ProfileReport, error) {
	pr, err := profile.NewReader(r)
	if err != nil {
		return nil, err
	}
	dec, err := lookup(pr.Digest(), pr.Epoch())
	if err != nil {
		return nil, err
	}
	g := dec.Spec().Graph
	return profile.DecodeContext(ctx, pr, workers, func(rec []byte) (string, error) {
		st, end, err := encoding.UnmarshalContext(rec)
		if err != nil {
			return "", err
		}
		b := ctxBufPool.Get().(*ctxBuf)
		defer ctxBufPool.Put(b)
		b.frames, err = dec.DecodeInto(b.frames[:0], st, end)
		if err != nil {
			return "", err
		}
		b.sb.Reset()
		for i, f := range b.frames {
			if i > 0 {
				b.sb.WriteString(" > ")
			}
			if f.Gap {
				b.sb.WriteString("...")
			} else {
				b.sb.WriteString(g.Name(f.Node))
			}
		}
		return b.sb.String(), nil
	}, reg)
}

// DecodeProfile decodes a .dpp profile (Profile.Save) recorded under this
// analysis into a hot-context report, fanning records out over workers
// goroutines (workers < 1 means 1). The report is identical for every
// worker count. The profile is routed by its recorded graph digest to the
// epoch that produced it — profiles saved before an extension keep decoding
// against their own epoch forever — and a profile whose digest matches no
// epoch of this analysis is refused.
func (a *Analysis) DecodeProfile(r io.Reader, workers int) (*ProfileReport, error) {
	return a.DecodeProfileContext(context.Background(), r, workers)
}

// DecodeProfileContext is DecodeProfile with cancellation: when ctx is
// cancelled the worker pool stops between records and the call returns
// ctx.Err() — the hook a serving process uses to abort in-flight batch
// decodes on shutdown.
func (a *Analysis) DecodeProfileContext(ctx context.Context, r io.Reader, workers int) (*ProfileReport, error) {
	reg, _ := a.observability()
	return decodeProfileStream(ctx, r, workers, func(d analysisio.GraphDigest, epoch uint64) (*encoding.CompiledDecoder, error) {
		a.epochMu.Lock()
		ep := a.epochByDigest(d)
		a.epochMu.Unlock()
		if ep == nil {
			return nil, fmt.Errorf("deltapath: profile mismatch: profile was recorded over %s (epoch %d), which matches no epoch of this analysis (current graph %s; stale analysis or wrong program?)",
				d, epoch, a.graphDigest())
		}
		return ep.decoder, nil
	}, reg)
}

// DecodeProfile decodes a .dpp profile against the persisted analysis (see
// Analysis.DecodeProfile). A persisted analysis is a single epoch, so the
// profile's digest must match it exactly.
func (d *OfflineDecoder) DecodeProfile(r io.Reader, workers int) (*ProfileReport, error) {
	return d.DecodeProfileContext(context.Background(), r, workers)
}

// DecodeProfileContext is DecodeProfile with cancellation (see
// Analysis.DecodeProfileContext).
func (d *OfflineDecoder) DecodeProfileContext(ctx context.Context, r io.Reader, workers int) (*ProfileReport, error) {
	return decodeProfileStream(ctx, r, workers, func(dig analysisio.GraphDigest, epoch uint64) (*encoding.CompiledDecoder, error) {
		if dig != d.bundle.Digest {
			return nil, fmt.Errorf("deltapath: profile mismatch: profile was recorded over %s (epoch %d), analysis graph is %s (epoch %d) (stale analysis or wrong program?)",
				dig, epoch, d.bundle.Digest, d.bundle.Epoch)
		}
		return d.decoder, nil
	}, nil)
}
