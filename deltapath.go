// Package deltapath is the public API of this repository: a complete
// implementation of "DeltaPath: Precise and Scalable Calling Context
// Encoding" (Zeng, Rhee, Zhang, Arora, Jiang, Liu — CGO 2014).
//
// DeltaPath tracks the calling context of a running program as a small
// integer maintained by constant-time additions at call sites, and decodes
// that integer — precisely and instantly — back into the exact sequence of
// active method invocations. Unlike its predecessors it supports
// object-oriented programs (one addition value per call site, even under
// dynamic dispatch), large programs (anchor nodes divide contexts so no
// integer ever overflows), and dynamic class loading (call path tracking
// detects unexpected call paths and keeps encodings correct).
//
// The pipeline mirrors the paper's implementation (Section 5):
//
//	program source (package lang / minivm)
//	    │  Analyze: call-graph construction (cha) + Algorithm 2 (core)
//	    ▼         + SID computation (cpt)
//	Analysis
//	    │  NewSession: bind addition values / anchors / SIDs to the
//	    ▼  program's call sites and method entries (instrument)
//	Session ──── Run / probes ───▶ per-emit Context records
//	    │  Decode: invert an encoding into the exact method sequence
//	    ▼
//	[]Frame (with explicit gaps where unanalysed code ran)
//
// Quick start:
//
//	prog, _ := deltapath.ParseProgram(src)
//	an, _ := deltapath.Analyze(prog, deltapath.Options{})
//	contexts, _ := an.Run(0, nil)
//	for _, c := range contexts {
//	    names, _ := an.Decode(c)
//	    fmt.Println(strings.Join(names, " > "))
//	}
//
// See the examples directory for event logging, context-sensitive
// profiling, and dynamic-class-loading scenarios, and cmd/dpbench for the
// full reproduction of the paper's evaluation.
package deltapath

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"deltapath/internal/analysisio"
	"deltapath/internal/callgraph"
	"deltapath/internal/cha"
	"deltapath/internal/chaos"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
	"deltapath/internal/instrument"
	"deltapath/internal/lang"
	"deltapath/internal/minivm"
	"deltapath/internal/obs"
	"deltapath/internal/profile"
	"deltapath/internal/rta"
	"deltapath/internal/verify"
)

// Sentinel decode errors, re-exported so callers can distinguish a corrupt
// encoding (a damaged record, or a record decoded against the wrong
// analysis) from API misuse. Match with errors.Is.
var (
	ErrCorruptEncoding = encoding.ErrCorruptEncoding
	ErrNoMatchingEdge  = encoding.ErrNoMatchingEdge
	ErrResidualID      = encoding.ErrResidualID
)

// Program is a minivm program (re-exported for API convenience).
type Program = minivm.Program

// MethodRef names a method: Class.method.
type MethodRef = minivm.MethodRef

// ParseProgram parses the textual program form (see package lang for the
// grammar).
func ParseProgram(src string) (*Program, error) { return lang.Parse(src) }

// Options configures Analyze.
type Options struct {
	// ApplicationOnly selects the encoding-application setting
	// (Section 4.2): library classes are excluded from analysis and
	// instrumentation, and call path tracking bridges the gaps.
	ApplicationOnly bool

	// DisableCPT turns call path tracking off. Only safe for programs
	// with no dynamic class loading and full instrumentation; kept for
	// overhead experiments.
	DisableCPT bool

	// MaxID caps the encoding integer (inclusive). Zero means 2^63-1.
	// Algorithm 2 introduces anchor nodes as needed to respect it.
	MaxID uint64

	// TargetMethods, when non-empty, enables the pruned encoding of
	// Section 8 (Future Work): only methods that can reach one of the
	// targets ("Class.method" names) — plus the targets themselves —
	// are encoded; everything else is skipped, with call path tracking
	// keeping the remaining contexts exact. Requires call path tracking
	// (incompatible with DisableCPT).
	TargetMethods []string

	// TrunkAnchors forces the named methods to be anchor nodes — the
	// DeltaPath half of Section 8's hybrid encoding, where profiling
	// identifies hot "trunk" functions and contexts are encoded relative
	// to them.
	TrunkAnchors []string

	// GraphBuilder selects the call-graph construction algorithm the
	// analysis is built over. The default (GraphCHA) instruments every
	// statically loaded method, matching a Java agent; GraphRTA grows the
	// graph from the entry by on-the-fly reachability — tighter encoding
	// space, but methods only dynamic code can reach are left to call path
	// tracking, so it requires CPT (incompatible with DisableCPT).
	GraphBuilder GraphBuilder
}

// GraphBuilder names a call-graph construction algorithm (see
// Options.GraphBuilder).
type GraphBuilder int

const (
	// GraphCHA: class hierarchy analysis over every statically loaded
	// method (internal/cha), the paper's WALA-equivalent default.
	GraphCHA GraphBuilder = iota
	// GraphRTA: on-the-fly reachability from the entry (internal/rta);
	// strictly no more nodes or edges than GraphCHA.
	GraphRTA
)

func (b GraphBuilder) String() string {
	if b == GraphRTA {
		return "rta"
	}
	return "cha"
}

// Analysis is the static-analysis product: everything needed to run a
// program with encoding probes and to decode the results.
type Analysis struct {
	prog   *Program
	build  *cha.Result
	result *core.Result
	plan   *instrument.Plan
	// decoder is the compiled flat-table decoder (read-only after
	// construction, safe for concurrent use without locks).
	decoder *encoding.CompiledDecoder

	digestOnce sync.Once
	digest     analysisio.GraphDigest

	// obsMu guards the observability state (see observe.go). obsReg/tracer
	// stay nil until EnableMetrics/EnableTracing — the no-op default.
	obsMu  sync.Mutex
	obsReg *obs.Registry
	tracer *obs.Tracer
}

// graphDigest lazily computes (once) the digest of the analysed call graph.
func (a *Analysis) graphDigest() analysisio.GraphDigest {
	a.digestOnce.Do(func() { a.digest = analysisio.DigestGraph(a.build.Graph) })
	return a.digest
}

// GraphDigest describes the call graph this analysis was built over
// (node/edge counts plus a content hash) — the compatibility key that .dpa
// analysis files and .dpp profiles carry.
func (a *Analysis) GraphDigest() string { return a.graphDigest().String() }

// Analyze builds the call graph, runs the DeltaPath encoding algorithm
// (Algorithm 2), computes SIDs for call path tracking, and resolves the
// instrumentation plan.
func Analyze(prog *Program, opts Options) (*Analysis, error) {
	setting := cha.EncodingAll
	if opts.ApplicationOnly {
		setting = cha.EncodingApplication
	}
	var exclude map[minivm.MethodRef]bool
	if len(opts.TargetMethods) > 0 {
		if opts.DisableCPT {
			return nil, fmt.Errorf("deltapath: pruned encoding requires call path tracking")
		}
		targets := make(map[minivm.MethodRef]bool, len(opts.TargetMethods))
		for _, name := range opts.TargetMethods {
			dot := strings.LastIndexByte(name, '.')
			if dot <= 0 || dot == len(name)-1 {
				return nil, fmt.Errorf("deltapath: target %q is not a Class.method name", name)
			}
			targets[minivm.MethodRef{Class: name[:dot], Method: name[dot+1:]}] = true
		}
		var err error
		if exclude, err = cha.PruneForTargets(prog, targets); err != nil {
			return nil, err
		}
	}
	// KeepUnreachable: a Java agent instruments every class it sees
	// loaded, including methods the static call graph considers
	// unreachable — which is what makes contexts decodable when dynamic
	// code calls into them (they become piece-start anchors). The RTA
	// builder deliberately gives that up for a tighter graph, so it leans
	// on call path tracking for any method it pruned.
	var build *cha.Result
	var err error
	buildOpts := cha.Options{
		Setting:         setting,
		KeepUnreachable: true,
		ExcludeMethods:  exclude,
	}
	switch opts.GraphBuilder {
	case GraphRTA:
		if opts.DisableCPT {
			return nil, fmt.Errorf("deltapath: the RTA graph builder requires call path tracking")
		}
		build, err = rta.Build(prog, buildOpts)
	default:
		build, err = cha.Build(prog, buildOpts)
	}
	if err != nil {
		return nil, err
	}
	var force []callgraph.NodeID
	for _, name := range opts.TrunkAnchors {
		n := build.Graph.Lookup(name)
		if n == callgraph.InvalidNode {
			return nil, fmt.Errorf("deltapath: trunk anchor %q is not in the call graph", name)
		}
		force = append(force, n)
	}
	res, err := core.Encode(build.Graph, core.Options{MaxID: opts.MaxID, ForceAnchors: force})
	if err != nil {
		return nil, err
	}
	var cptPlan *cpt.Plan
	if !opts.DisableCPT {
		cptPlan = cpt.Compute(build.Graph)
	}
	plan, err := instrument.NewPlan(build, res.Spec, cptPlan)
	if err != nil {
		return nil, err
	}
	return &Analysis{
		prog:    prog,
		build:   build,
		result:  res,
		plan:    plan,
		decoder: encoding.Compile(res.Spec),
	}, nil
}

// Anchors returns the names of the overflow anchor nodes Algorithm 2 added.
func (a *Analysis) Anchors() []string {
	out := make([]string, 0, len(a.result.OverflowAnchors))
	for _, n := range a.result.OverflowAnchors {
		out = append(out, a.build.Graph.Name(n))
	}
	return out
}

// MaxID returns the largest encoding ID any context can produce under this
// analysis — the static encoding-space requirement.
func (a *Analysis) MaxID() uint64 { return a.result.MaxID }

// NumInstrumentedSites reports how many call sites carry instrumentation.
func (a *Analysis) NumInstrumentedSites() int { return a.plan.NumInstrumentedSites() }

// Context is one captured calling-context encoding: the state snapshot plus
// the program point where it was captured.
type Context struct {
	// At is the method containing the emit point.
	At MethodRef
	// Tag is the emit point's tag.
	Tag   string
	state *encoding.State
	node  callgraph.NodeID
	known bool
}

// Session couples a VM with a DeltaPath encoder, ready to run.
type Session struct {
	an  *Analysis
	vm  *minivm.VM
	enc *instrument.Encoder
	inj *chaos.Injector // non-nil after EnableChaos
}

// ChaosOptions configures deterministic fault injection for a session.
type ChaosOptions struct {
	// Seed drives the fault stream; same seed, same faults.
	Seed uint64
	// Rate is the per-probe-event fault probability.
	Rate float64
}

// EnableChaos turns the session into a fault-injection run: probe events
// are routed through a seeded injector (dropped events, encoding-ID bit
// flips, piece-stack truncation, unknown call sites), and the self-healing
// protocol runs at every emit point — an invariant check of the encoding
// against the VM's stack, with a stack-walk resync on any detected
// corruption — so every captured context is exact despite the faults.
// Call before Run; Health reports what happened.
func (s *Session) EnableChaos(opts ChaosOptions) {
	s.inj = chaos.NewInjector(s.enc, chaos.Config{Seed: opts.Seed, Rate: opts.Rate})
	s.enc.SetDecoder(s.an.decoder)
	s.vm.SetProbes(s.inj)
}

// Health reports the session's graceful-degradation counters.
type Health struct {
	// Resyncs counts stack-walk resynchronizations.
	Resyncs uint64
	// CorruptionsDetected counts invariant-checker detections (mismatches,
	// typed decode errors, unbalanced pops).
	CorruptionsDetected uint64
	// DroppedEvents counts probe events the injector suppressed.
	DroppedEvents uint64
	// PartialDecodes counts best-effort decodes that salvaged only a
	// suffix of a corrupt context.
	PartialDecodes uint64
	// FaultsInjected counts injected faults; ProbeEvents counts the probe
	// events that flowed through the injector. Both zero without chaos.
	FaultsInjected uint64
	ProbeEvents    uint64
}

// Health returns the session's health counters.
func (s *Session) Health() Health {
	h := Health{
		Resyncs:             s.enc.Health.Resyncs,
		CorruptionsDetected: s.enc.Health.CorruptionsDetected,
		DroppedEvents:       s.enc.Health.DroppedEvents,
		PartialDecodes:      s.enc.Health.PartialDecodes,
	}
	if s.inj != nil {
		h.FaultsInjected = s.inj.TotalInjected()
		h.ProbeEvents = s.inj.Events()
	}
	return h
}

// NewSession prepares an instrumented execution of the analysed program.
// seed drives virtual-dispatch choices deterministically.
func (a *Analysis) NewSession(seed uint64) (*Session, error) {
	vm, err := minivm.NewVM(a.prog, seed)
	if err != nil {
		return nil, err
	}
	enc := instrument.NewEncoder(a.plan)
	if reg, tr := a.observability(); reg != nil {
		enc.Observe(reg, tr)
		vm.Observe(reg, tr)
	}
	vm.SetProbes(enc)
	vm.SetInstrumented(a.plan.InstrumentedMethods())
	return &Session{an: a, vm: vm, enc: enc}, nil
}

// VM exposes the underlying virtual machine (e.g. for ground-truth stack
// walks in tests and experiments).
func (s *Session) VM() *minivm.VM { return s.vm }

// Hazards reports how many hazardous unexpected call paths the run
// detected.
func (s *Session) Hazards() uint64 { return s.enc.Hazards }

// Capture snapshots the current encoding at an emit point. It is intended
// to be called from an OnEmit callback.
func (s *Session) Capture(at MethodRef, tag string) Context {
	node, known := s.an.build.NodeOf[at]
	return Context{
		At:    at,
		Tag:   tag,
		state: s.enc.State().Snapshot(),
		node:  node,
		known: known,
	}
}

// Run executes the program. If onEmit is non-nil it receives a captured
// Context at every emit point; otherwise all contexts are collected and
// returned.
func (s *Session) Run(onEmit func(Context)) ([]Context, error) {
	var collected []Context
	s.vm.OnEmit = func(_ *minivm.VM, m MethodRef, tag string) {
		if s.inj != nil {
			// Self-healing protocol: verify the encoding against the
			// VM's stack before capturing, resyncing on corruption, so
			// the captured context is exact despite injected faults.
			if _, known := s.an.build.NodeOf[m]; known {
				s.enc.VerifyAndResync(s.vm)
			}
		}
		c := s.Capture(m, tag)
		if onEmit != nil {
			onEmit(c)
		} else {
			collected = append(collected, c)
		}
	}
	if err := s.vm.Run(); err != nil {
		return nil, err
	}
	return collected, nil
}

// Run is the convenience path: analyze-once callers that just want every
// context of one execution. It creates a session and runs it.
func (a *Analysis) Run(seed uint64, onEmit func(Context)) ([]Context, error) {
	s, err := a.NewSession(seed)
	if err != nil {
		return nil, err
	}
	return s.Run(onEmit)
}

// Decode recovers the exact calling context of a captured encoding, from
// the program entry to the capture point. Gaps — stretches of dynamically
// loaded or excluded code the encoding intentionally does not track — are
// rendered as "...".
func (a *Analysis) Decode(c Context) ([]string, error) {
	if !c.known {
		return nil, fmt.Errorf("deltapath: emit point %s is outside the analysed program", c.At)
	}
	return a.decoder.DecodeNames(c.state, c.node)
}

// DecodeBestEffort is the degraded-mode counterpart of Decode: it never
// fails on a corrupt encoding, instead returning the longest decodable
// suffix of the context with an explicit "..." gap standing in for the
// unrecoverable prefix. complete reports whether the whole context decoded
// (in which case the result equals Decode's). The error is non-nil only
// for API misuse (an emit point outside the analysed program).
func (a *Analysis) DecodeBestEffort(c Context) (names []string, complete bool, err error) {
	if !c.known {
		return nil, false, fmt.Errorf("deltapath: emit point %s is outside the analysed program", c.At)
	}
	frames, complete := a.decoder.DecodeBestEffort(c.state, c.node)
	return a.decoder.Names(frames), complete, nil
}

// DecodeBytesBestEffort decodes a context record with best-effort
// semantics: a corrupt record yields the longest decodable suffix (behind a
// "..." gap) rather than an error. Only a structurally unreadable record —
// one UnmarshalContext rejects — returns an error.
func (a *Analysis) DecodeBytesBestEffort(record []byte) (names []string, complete bool, err error) {
	st, end, err := encoding.UnmarshalContext(record)
	if err != nil {
		return nil, false, err
	}
	frames, complete := a.decoder.DecodeBestEffort(st, end)
	return a.decoder.Names(frames), complete, nil
}

// Key returns the canonical encoding key of a context: equal keys decode to
// equal contexts, so keys serve as exact context identifiers for profiling
// and logging.
func (c Context) Key() string {
	if !c.known {
		return "?" + c.At.String()
	}
	return c.state.Key(c.node)
}

// StackDepth reports the number of encoding pieces representing the
// context (Table 2's stack metric).
func (c Context) StackDepth() int { return c.state.Depth() }

// ID returns the current encoding integer of the context's deepest piece.
func (c Context) ID() uint64 { return c.state.ID }

// MarshalBinary serializes a captured context into a compact binary record
// (typically a handful of bytes): the persistence format for event logs.
// Records from unanalysed emit points cannot be serialized.
func (c Context) MarshalBinary() ([]byte, error) {
	if !c.known {
		return nil, fmt.Errorf("deltapath: emit point %s is outside the analysed program", c.At)
	}
	return encoding.MarshalContext(c.state, c.node), nil
}

// DecodeBytes decodes a context record produced by Context.MarshalBinary
// under this analysis. The analysis must be the one (or an identical rerun
// of the one) that produced the record — encodings are meaningful only
// relative to their addition values.
func (a *Analysis) DecodeBytes(record []byte) ([]string, error) {
	st, end, err := encoding.UnmarshalContext(record)
	if err != nil {
		return nil, err
	}
	return a.decoder.DecodeNames(st, end)
}

// SaveAnalysis persists the analysis — call graph, addition values,
// anchors, SIDs — so that context records can be decoded later by any host
// holding the file, without the program and without re-analysis (see
// LoadDecoder and cmd/dpdecode -analysis).
func (a *Analysis) SaveAnalysis(w io.Writer) error {
	var cptPlan *cpt.Plan = a.plan.CPT
	return analysisio.Save(w, a.result.Spec, cptPlan)
}

// VerifyEncoding statically certifies the encoding this analysis produced:
// addition-value intervals pairwise disjoint (every context ID decodes to
// exactly one path), every recursive cycle anchored, piece capacities
// within the integer limit, SID sets closed under the hazard rules. It is
// the programmatic form of cmd/dplint; a nil return is a soundness
// certificate for every execution, not just the ones the tests ran. The
// returned error lists every finding.
func (a *Analysis) VerifyEncoding() error {
	rep := verify.Check(a.result.Spec, a.plan.CPT, verify.Options{})
	if rep.Clean() {
		return nil
	}
	rep.Source = "analysis"
	return fmt.Errorf("deltapath: encoding verification failed:\n%s", strings.TrimRight(rep.Text(), "\n"))
}

// OfflineDecoder decodes context records against a persisted analysis.
type OfflineDecoder struct {
	bundle  *analysisio.Bundle
	decoder *encoding.CompiledDecoder
}

// LoadDecoder restores a persisted analysis for offline decoding.
func LoadDecoder(r io.Reader) (*OfflineDecoder, error) {
	bundle, err := analysisio.Load(r)
	if err != nil {
		return nil, err
	}
	return &OfflineDecoder{bundle: bundle, decoder: encoding.Compile(bundle.Spec)}, nil
}

// DecodeBytes decodes a context record produced under the persisted
// analysis.
func (d *OfflineDecoder) DecodeBytes(record []byte) ([]string, error) {
	st, end, err := encoding.UnmarshalContext(record)
	if err != nil {
		return nil, err
	}
	return d.decoder.DecodeNames(st, end)
}

// DecodeBytesBestEffort decodes a context record with best-effort
// semantics (see Analysis.DecodeBytesBestEffort).
func (d *OfflineDecoder) DecodeBytesBestEffort(record []byte) (names []string, complete bool, err error) {
	st, end, err := encoding.UnmarshalContext(record)
	if err != nil {
		return nil, false, err
	}
	frames, complete := d.decoder.DecodeBestEffort(st, end)
	return d.decoder.Names(frames), complete, nil
}

// GraphDigest describes the call graph the persisted analysis was built
// over (node/edge counts plus a content hash).
func (d *OfflineDecoder) GraphDigest() string { return d.bundle.Digest.String() }

// CheckAnalysis verifies that a freshly built analysis matches the
// persisted one — the guard against decoding records from one program
// version against the analysis of another. It compares the live call
// graph's digest with the digest stored in the analysis file.
func (d *OfflineDecoder) CheckAnalysis(a *Analysis) error {
	return d.bundle.CheckGraph(a.build.Graph)
}

// --- Concurrent profile pipeline ---
//
// The paper's premise is that a calling context is a small integer, so
// collecting and aggregating millions of contexts should cost almost
// nothing. The profile pipeline delivers that: concurrent sessions intern
// their contexts into one sharded store (Profile), the aggregate streams to
// disk as a compact .dpp file (Profile.Save), and decoding fans the stored
// records over a worker pool into a hot-context report (DecodeProfile).

// ProfileReport is a decoded profile: every distinct calling context with
// its aggregate count, hottest first (fully deterministic order).
type ProfileReport = profile.Report

// HotContext is one row of a ProfileReport.
type HotContext = profile.HotContext

// ProfileRecord is one interned record of a Profile (see Profile.Records).
type ProfileRecord = profile.Record

// Profile aggregates captured contexts into a sharded context-interning
// store. All methods are safe for concurrent use: many sessions — or many
// goroutines of one collector — feed a single Profile without contending
// on a single lock.
type Profile struct {
	an      *Analysis
	store   *profile.Store
	skipped atomic.Uint64
}

// NewProfile returns an empty profile for contexts captured under this
// analysis. shards is rounded up to a power of two; <= 0 selects the
// default (64).
func (a *Analysis) NewProfile(shards int) *Profile {
	store := profile.NewStore(shards)
	if reg, _ := a.observability(); reg != nil {
		store.Observe(reg)
	}
	return &Profile{an: a, store: store}
}

// Add records one hit of the captured context. Contexts captured at emit
// points outside the analysed program cannot be serialized and are counted
// as skipped; Add reports whether the context was recorded.
func (p *Profile) Add(c Context) bool {
	rec, err := c.MarshalBinary()
	if err != nil {
		p.skipped.Add(1)
		return false
	}
	p.store.Intern(rec)
	return true
}

// Unique reports the number of distinct contexts recorded.
func (p *Profile) Unique() uint64 { return p.store.Unique() }

// Total reports the aggregate hit count across all contexts.
func (p *Profile) Total() uint64 { return p.store.Total() }

// Skipped reports how many unanalysed-emit contexts Add rejected.
func (p *Profile) Skipped() uint64 { return p.skipped.Load() }

// Records returns the interned records with their counts in deterministic
// (record-byte) order — the raw data Save streams out.
func (p *Profile) Records() []ProfileRecord { return p.store.Snapshot() }

// Save streams the profile to w in the binary .dpp format: a header
// carrying the analysis's graph digest, then one varint-encoded record per
// distinct context with its count. DecodeProfile refuses a .dpp whose
// digest does not match the analysis in hand, exactly as loading a .dpa
// analysis file refuses a tampered payload.
func (p *Profile) Save(w io.Writer) error {
	pw, err := profile.NewWriter(w, p.an.graphDigest())
	if err != nil {
		return err
	}
	if err := pw.WriteSnapshot(p.store); err != nil {
		return err
	}
	return pw.Flush()
}

// Collect runs one concurrent session per seed, interning every emitted
// context into the profile. configure (may be nil) is invoked on each
// session before it runs — e.g. to enable chaos injection, so counts from
// fault-injected runs merge into the same store. onEmit (may be nil) is
// invoked for every recorded context, concurrently from multiple sessions.
// The first session error is returned after every session has finished.
func (p *Profile) Collect(seeds []uint64, configure func(seed uint64, s *Session), onEmit func(Context)) error {
	return p.CollectContext(context.Background(), seeds, configure, onEmit)
}

// CollectContext is Collect with cancellation: sessions whose run has not
// started when ctx is cancelled are skipped, and the call returns ctx.Err()
// once the in-flight sessions finish. (A session already executing runs to
// completion — the VM has no preemption point — so cancellation bounds new
// work, not the longest single run.)
func (p *Profile) CollectContext(ctx context.Context, seeds []uint64, configure func(seed uint64, s *Session), onEmit func(Context)) error {
	var wg sync.WaitGroup
	errs := make(chan error, len(seeds))
	for _, seed := range seeds {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			if ctx.Err() != nil {
				return // cancelled before this session started
			}
			s, err := p.an.NewSession(seed)
			if err != nil {
				errs <- fmt.Errorf("seed %d: %w", seed, err)
				return
			}
			if configure != nil {
				configure(seed, s)
			}
			if ctx.Err() != nil {
				return
			}
			if _, err := s.Run(func(c Context) {
				p.Add(c)
				if onEmit != nil {
					onEmit(c)
				}
			}); err != nil {
				errs <- fmt.Errorf("seed %d: %w", seed, err)
			}
		}(seed)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}
	return ctx.Err()
}

// RunParallel executes the program once per seed, concurrently — the
// Figure 8 worker pattern, with each session keeping its encoding state
// thread-local exactly as the paper's implementation does — and aggregates
// every emitted context into one Profile. onEmit (may be nil) observes
// recorded contexts as they arrive, concurrently.
func (a *Analysis) RunParallel(seeds []uint64, onEmit func(Context)) (*Profile, error) {
	return a.RunParallelContext(context.Background(), seeds, onEmit)
}

// RunParallelContext is RunParallel with cancellation (see CollectContext
// for the exact semantics): a server shutting down cancels ctx and the
// worker pool stops starting new sessions.
func (a *Analysis) RunParallelContext(ctx context.Context, seeds []uint64, onEmit func(Context)) (*Profile, error) {
	p := a.NewProfile(0)
	if err := p.CollectContext(ctx, seeds, nil, onEmit); err != nil {
		return nil, err
	}
	return p, nil
}

// ctxBuf is the per-worker scratch of the profile decode pipeline: a frame
// buffer DecodeInto reuses and a string builder for the rendered context.
// Pooled so steady-state record decoding allocates only the output string.
type ctxBuf struct {
	frames []encoding.Frame
	sb     strings.Builder
}

var ctxBufPool = sync.Pool{New: func() any { return new(ctxBuf) }}

// decodeProfileStream is the shared implementation of DecodeProfile: check
// the profile's digest against the analysis in hand, then fan the records
// over a worker pool decoding through the compiled flat tables.
func decodeProfileStream(ctx context.Context, r io.Reader, workers int, want analysisio.GraphDigest, dec *encoding.CompiledDecoder, reg *obs.Registry) (*ProfileReport, error) {
	pr, err := profile.NewReader(r)
	if err != nil {
		return nil, err
	}
	if pr.Digest() != want {
		return nil, fmt.Errorf("deltapath: profile mismatch: profile was recorded over %s, analysis graph is %s (stale analysis or wrong program?)",
			pr.Digest(), want)
	}
	g := dec.Spec().Graph
	return profile.DecodeContext(ctx, pr, workers, func(rec []byte) (string, error) {
		st, end, err := encoding.UnmarshalContext(rec)
		if err != nil {
			return "", err
		}
		b := ctxBufPool.Get().(*ctxBuf)
		defer ctxBufPool.Put(b)
		b.frames, err = dec.DecodeInto(b.frames[:0], st, end)
		if err != nil {
			return "", err
		}
		b.sb.Reset()
		for i, f := range b.frames {
			if i > 0 {
				b.sb.WriteString(" > ")
			}
			if f.Gap {
				b.sb.WriteString("...")
			} else {
				b.sb.WriteString(g.Name(f.Node))
			}
		}
		return b.sb.String(), nil
	}, reg)
}

// DecodeProfile decodes a .dpp profile (Profile.Save) recorded under this
// analysis into a hot-context report, fanning records out over workers
// goroutines (workers < 1 means 1). The report is identical for every
// worker count. A profile whose graph digest does not match this analysis
// is refused.
func (a *Analysis) DecodeProfile(r io.Reader, workers int) (*ProfileReport, error) {
	return a.DecodeProfileContext(context.Background(), r, workers)
}

// DecodeProfileContext is DecodeProfile with cancellation: when ctx is
// cancelled the worker pool stops between records and the call returns
// ctx.Err() — the hook a serving process uses to abort in-flight batch
// decodes on shutdown.
func (a *Analysis) DecodeProfileContext(ctx context.Context, r io.Reader, workers int) (*ProfileReport, error) {
	reg, _ := a.observability()
	return decodeProfileStream(ctx, r, workers, a.graphDigest(), a.decoder, reg)
}

// DecodeProfile decodes a .dpp profile against the persisted analysis (see
// Analysis.DecodeProfile).
func (d *OfflineDecoder) DecodeProfile(r io.Reader, workers int) (*ProfileReport, error) {
	return d.DecodeProfileContext(context.Background(), r, workers)
}

// DecodeProfileContext is DecodeProfile with cancellation (see
// Analysis.DecodeProfileContext).
func (d *OfflineDecoder) DecodeProfileContext(ctx context.Context, r io.Reader, workers int) (*ProfileReport, error) {
	return decodeProfileStream(ctx, r, workers, d.bundle.Digest, d.decoder, nil)
}
