// Decode-path benchmarks: the legacy map-based decoder vs the compiled
// flat-table decoder on identical context sets, plus the encoder's per-event
// cost through the ref-keyed (map) and dense (slice-index) probe interfaces.
// `dpbench -experiment decode` measures the same ratio end to end; these
// go-bench forms are the developer-loop spelling.
package deltapath

import (
	"os"
	"testing"

	"deltapath/internal/callgraph"
	"deltapath/internal/encoding"
	"deltapath/internal/instrument"
)

// benchContext is one sampled decode input.
type benchContext struct {
	st  *encoding.State
	end callgraph.NodeID
}

// collectDecodeContexts analyzes a corpus program and gathers its distinct
// emitted contexts across a few dispatch seeds.
func collectDecodeContexts(b *testing.B, file string) (*Analysis, []benchContext) {
	b.Helper()
	src, err := os.ReadFile(file)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := ParseProgram(string(src))
	if err != nil {
		b.Fatal(err)
	}
	an, err := Analyze(prog, Options{})
	if err != nil {
		b.Fatal(err)
	}
	seen := make(map[string]bool)
	var ctxs []benchContext
	for seed := uint64(0); seed < 4; seed++ {
		contexts, err := an.Run(seed, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range contexts {
			if !c.known || seen[c.Key()] {
				continue
			}
			seen[c.Key()] = true
			ctxs = append(ctxs, benchContext{st: c.state, end: c.node})
		}
	}
	if len(ctxs) == 0 {
		b.Fatal("no contexts collected")
	}
	return an, ctxs
}

// BenchmarkDecodeLegacy measures the map-based reference decoder. One
// iteration decodes every collected context; ns/context divides it out.
func BenchmarkDecodeLegacy(b *testing.B) {
	an, ctxs := collectDecodeContexts(b, "testdata/recursion.mv")
	dec := encoding.NewDecoder(an.epoch().result.Spec)
	for _, c := range ctxs { // warm the memo caches
		if _, err := dec.Decode(c.st, c.end); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range ctxs {
			if _, err := dec.Decode(c.st, c.end); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*int64(len(ctxs))), "ns/context")
}

// BenchmarkDecodeCompiled measures the compiled flat-table decoder on the
// same contexts, through the allocation-free DecodeInto batch loop.
func BenchmarkDecodeCompiled(b *testing.B) {
	an, ctxs := collectDecodeContexts(b, "testdata/recursion.mv")
	dec := an.epoch().decoder
	var buf []encoding.Frame
	var err error
	for _, c := range ctxs { // warm the scratch pool and buffer
		if buf, err = dec.DecodeInto(buf, c.st, c.end); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range ctxs {
			if buf, err = dec.DecodeInto(buf, c.st, c.end); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*int64(len(ctxs))), "ns/context")
}

// fastEvent is one pre-resolved probe event for the dense replay.
type fastEvent struct {
	kind   uint8
	site   int32
	target int32
	m      int32
}

// BenchmarkEncoderEvent compares the encoder's per-event cost through the
// two probe interfaces: "map" resolves each ref through the plan's maps (the
// legacy data path), "dense" replays the same stream through the FastProbes
// slice-indexed tables the VM now drives by default.
func BenchmarkEncoderEvent(b *testing.B) {
	plan, stream := recordEventStream(b, "compress", 0.02)
	b.Run("map", func(b *testing.B) {
		enc := instrument.NewEncoder(plan)
		tokens := make([]uint8, 0, 512)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			enc.Reset()
			tokens = replayStream(enc, stream, tokens)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*int64(len(stream))), "ns/event")
	})
	b.Run("dense", func(b *testing.B) {
		enc := instrument.NewEncoder(plan)
		fast := make([]fastEvent, len(stream))
		for i, ev := range stream {
			fast[i] = fastEvent{
				kind:   ev.kind,
				site:   plan.SiteID(ev.site),
				target: plan.MethodID(ev.target),
				m:      plan.MethodID(ev.m),
			}
		}
		tokens := make([]uint8, 0, 512)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			enc.Reset()
			tokens = tokens[:0]
			for j := range fast {
				ev := &fast[j]
				switch ev.kind {
				case 0:
					tokens = append(tokens, enc.FastBeforeCall(ev.site, ev.target))
				case 2:
					tokens = append(tokens, enc.FastEnter(ev.m))
				case 1:
					enc.FastAfterCall(ev.site, ev.target, tokens[len(tokens)-1])
					tokens = tokens[:len(tokens)-1]
				case 3:
					enc.FastExit(ev.m, tokens[len(tokens)-1])
					tokens = tokens[:len(tokens)-1]
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*int64(len(stream))), "ns/event")
	})
}
