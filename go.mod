module deltapath

go 1.22
