// Context-sensitive profiling (Section 1: "context sensitive profiling is
// powerful as it associates data such as execution frequencies ... with
// calling contexts"). The profiler attributes a cost metric to each
// calling context of a hot function — not merely to the function — so the
// expensive call path stands out even when the function itself is shared
// by many callers.
//
// The example profiles the encoding-application setting: library classes
// are excluded from instrumentation (Section 4.2), and call path tracking
// keeps contexts exact across the uninstrumented library frames, decoding
// them with explicit "..." gaps.
//
//	go run ./examples/profiling
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"deltapath"
)

const app = `
entry App.main

class App {
  method main {
    loop 8  { call Ingest.batch }
    loop 2  { call Report.render }
    emit end
  }
}

class Ingest {
  method batch { call Parse.rows; call Store.put }
}
class Report {
  method render { call Store.get; call Parse.rows }
}
class Parse {
  method rows { call Codec.run; emit hot }   # the hot function
}
class Store {
  method put { call Codec.run; emit hot }
  method get { work 3 }
}

# Library plumbing: excluded from encoding, bridged by call path tracking.
library class Codec {
  method run { call Checksum.update }
}
library class Checksum {
  method update { call Metrics.tick }
}

class Metrics {
  method tick { work 2; emit hot }
}
`

func main() {
	prog, err := deltapath.ParseProgram(app)
	if err != nil {
		log.Fatal(err)
	}
	an, err := deltapath.Analyze(prog, deltapath.Options{ApplicationOnly: true})
	if err != nil {
		log.Fatal(err)
	}

	// Accumulate a per-context metric; the context key is the profile
	// bucket, so profiling cost per sample is one map update on an
	// integer-derived key.
	type bucket struct {
		sample deltapath.Context
		cost   int
	}
	profile := make(map[string]*bucket)
	session, err := an.NewSession(3)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := session.Run(func(c deltapath.Context) {
		if c.Tag != "hot" {
			return
		}
		k := c.Key()
		if b, ok := profile[k]; ok {
			b.cost += 10 // synthetic cost units per sample
		} else {
			profile[k] = &bucket{sample: c, cost: 10}
		}
	}); err != nil {
		log.Fatal(err)
	}

	keys := make([]string, 0, len(profile))
	for k := range profile {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return profile[keys[i]].cost > profile[keys[j]].cost })

	fmt.Println("cost  calling context ('...' = excluded library frames)")
	for _, k := range keys {
		b := profile[k]
		names, err := an.Decode(b.sample)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d  %s\n", b.cost, strings.Join(names, " > "))
	}
	fmt.Printf("\n%d contexts; %d hazardous library call-backs bridged by CPT\n",
		len(profile), session.Hazards())
}
