// Quickstart: define a small object-oriented program, analyze it with
// DeltaPath, run it, and decode every captured calling context.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"deltapath"
)

const program = `
entry Main.main

class Main {
  method main {
    call Service.handle
    vcall Codec.encode      # dispatched to Codec, Json or Binary
    emit done
  }
}

class Service {
  method handle { call Codec.validate; emit handled }
}

class Codec {
  method encode   { work 5; emit encoded }
  method validate { work 2 }
}
class Json extends Codec {
  method encode { call Codec.validate; emit encoded }
}
class Binary extends Codec {
  method encode { work 9; emit encoded }
}
`

func main() {
	prog, err := deltapath.ParseProgram(program)
	if err != nil {
		log.Fatal(err)
	}

	// Static analysis: call graph + Algorithm 2 + call path tracking.
	an, err := deltapath.Analyze(prog, deltapath.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instrumented %d call sites; encoding space needs IDs up to %d\n\n",
		an.NumInstrumentedSites(), an.MaxID())

	// Run the program; every emit point captures its context encoding.
	contexts, err := an.Run(42, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Decoding is precise and instant: the integer ID (plus the piece
	// stack) maps back to the exact sequence of active invocations.
	for _, c := range contexts {
		names, err := an.Decode(c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("emit %-8s id=%-3d  %s\n", c.Tag, c.ID(), strings.Join(names, " > "))
	}
}
