// Dynamic class loading (Section 4.1). A plugin class that static analysis
// never saw joins virtual dispatch at runtime, creating unexpected call
// paths (UCPs). Call path tracking classifies them:
//
//   - benign — the plugin forwards into a method the call site could have
//     reached anyway: the decoded context is exact, with the plugin frame
//     transparently absent;
//   - hazardous — the plugin calls into an unrelated method: detected at
//     that method's entry, the encoding restarts a piece, and the decoded
//     context shows an explicit "..." gap instead of silently lying.
//
// Run with -nocpt to see why the technique exists: without call path
// tracking the same program decodes to wrong contexts.
//
//	go run ./examples/dynamicload [-nocpt]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"deltapath"
)

const host = `
entry Host.main

class Host {
  method main {
    call Host.warmup         # dispatch set is still the static one
    load AuditPlugin         # the plugin appears mid-execution
    loop 6 { vcall Filter.apply }
    emit end
  }
  method warmup { vcall Filter.apply }
}

class Filter {
  method apply { call Sink.accept; emit applied }
}
class Upper extends Filter {
  method apply { call Sink.accept; emit applied }
}

class Sink {
  method accept { work 2; emit sunk }
}
class Alarm {
  method raise { emit alarm }
}

# The plugin overrides Filter.apply. Its call to Sink.accept is a benign
# UCP (Sink.accept is where the site's static targets lead anyway is NOT
# the case here — it is reached from unanalysed code, but its SID matches
# no saved expectation, so it is detected); its call to Alarm.raise is the
# clearly hazardous path.
dynamic class AuditPlugin extends Filter {
  method apply { call Sink.accept; call Alarm.raise; emit plugged }
}
`

func main() {
	nocpt := flag.Bool("nocpt", false, "disable call path tracking (demonstrates corruption)")
	flag.Parse()

	prog, err := deltapath.ParseProgram(host)
	if err != nil {
		log.Fatal(err)
	}
	an, err := deltapath.Analyze(prog, deltapath.Options{DisableCPT: *nocpt})
	if err != nil {
		log.Fatal(err)
	}
	session, err := an.NewSession(11)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("call path tracking: %v\n\n", !*nocpt)
	if _, err := session.Run(func(c deltapath.Context) {
		// Ground truth from the VM's stack, for comparison.
		var truth []string
		for _, f := range session.VM().Stack() {
			truth = append(truth, f.String())
		}
		names, derr := an.Decode(c)
		decoded := "<undecodable>"
		if derr == nil {
			decoded = strings.Join(names, " > ")
		}
		status := "ok"
		if gapless(names) != appOnly(truth, an) {
			status = "WRONG"
		}
		if c.Tag == "plugged" {
			status = "inside plugin (not analysed)"
			decoded = "-"
		}
		fmt.Printf("%-8s %-34s decoded: %-52s [%s]\n",
			c.Tag, strings.Join(truth, ">"), decoded, status)
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhazardous UCPs detected: %d\n", session.Hazards())
}

// gapless strips "..." gap markers.
func gapless(names []string) string {
	var out []string
	for _, n := range names {
		if n != "..." {
			out = append(out, n)
		}
	}
	return strings.Join(out, ">")
}

// appOnly filters a ground-truth stack to analysed methods (the dynamic
// plugin's frames are intentionally not tracked).
func appOnly(truth []string, an *deltapath.Analysis) string {
	var out []string
	for _, f := range truth {
		if !strings.HasPrefix(f, "AuditPlugin.") {
			out = append(out, f)
		}
	}
	return strings.Join(out, ">")
}
