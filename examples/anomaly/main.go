// Anomaly detection over calling contexts — another of the paper's
// motivating applications (Section 1, citing call-stack-based intrusion
// detection). The detector learns the set of calling-context keys observed
// during training runs of a service; in production, any security-sensitive
// operation reached through a context outside that set raises an alert.
//
// Because DeltaPath encodings are exact (no hash collisions), a context
// outside the trained set is *definitely* novel — and because they decode,
// the alert shows the analyst the precise path, including an explicit gap
// where dynamically loaded plugin code intervened. A PCC-style hash could
// do the first half only probabilistically and the second not at all.
//
//	go run ./examples/anomaly
package main

import (
	"fmt"
	"log"
	"strings"

	"deltapath"
)

// The service: file access (the sensitive operation) is reached through
// vetted handler paths. The Plugin class — never loaded during training —
// sneaks in an extra path to FileStore.read that skips Auth.check.
//
// The %s slot is "work 1" in training and "load Plugin" in production;
// neither instruction adds call edges, so both variants have the same call
// graph and the same addition values — context keys carry over.
const serviceTemplate = `
entry Svc.main

class Svc {
  method main {
    %s
    loop 6 { vcall Handler.handle }
    emit shutdown
  }
}

class Handler {
  method handle { call Auth.check; call FileStore.read }
}
class Reports extends Handler {
  method handle { call Auth.check; call FileStore.read; emit report }
}

class Auth { method check { work 3 } }

class FileStore {
  method read { work 2; emit file_access }
}

dynamic class Plugin extends Handler {
  method handle { call FileStore.read; emit plugin }   # skips Auth.check!
}
`

func analyze(slot string) *deltapath.Analysis {
	prog, err := deltapath.ParseProgram(fmt.Sprintf(serviceTemplate, slot))
	if err != nil {
		log.Fatal(err)
	}
	an, err := deltapath.Analyze(prog, deltapath.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return an
}

func main() {
	training := analyze("work 1")
	production := analyze("load Plugin")

	// Training: learn the vetted file-access contexts across several runs.
	trained := make(map[string]bool)
	for seed := uint64(0); seed < 5; seed++ {
		if _, err := training.Run(seed, func(c deltapath.Context) {
			if c.Tag == "file_access" {
				trained[c.Key()] = true
			}
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("trained on %d distinct file-access contexts\n\n", len(trained))

	// Production: the plugin is loaded and joins Handler dispatch.
	alerts := 0
	if _, err := production.Run(99, func(c deltapath.Context) {
		if c.Tag != "file_access" || trained[c.Key()] {
			return
		}
		alerts++
		names, err := production.Decode(c)
		path := "<undecodable>"
		if err == nil {
			path = strings.Join(names, " > ")
		}
		fmt.Printf("ALERT %d: file access through novel context:\n   %s\n", alerts, path)
	}); err != nil {
		log.Fatal(err)
	}
	if alerts == 0 {
		fmt.Println("no anomalies this run (dispatch never chose the plugin; try another seed)")
		return
	}
	fmt.Printf("\n%d anomalous file accesses detected — note the '...' gap where the\n", alerts)
	fmt.Println("unvetted plugin ran, and the missing Auth.check frame on the path.")
}
