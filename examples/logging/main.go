// Event logging with calling contexts — the paper's opening motivation:
// "simply logging the system call events fails to record how program
// components interact when a system call is issued, while recording calling
// contexts would be very informative" (Section 1).
//
// The program below is a small server-like application whose syscall-layer
// methods contain emit points (the logging statements). Each log record
// carries only an integer-sized encoding; this example decodes the records
// afterwards into full call paths, grouping identical contexts — precisely
// the workflow DeltaPath enables and hash-based encodings (PCC) cannot
// support, because they do not decode.
//
//	go run ./examples/logging
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"deltapath"
)

const server = `
entry Server.main

class Server {
  method main {
    loop 5 {
      call Router.dispatch
    }
    emit shutdown
  }
}

class Router {
  method dispatch {
    vcall Handler.serve
  }
}

class Handler {
  method serve { call IO.read; emit http_200 }
}
class StaticFiles extends Handler {
  method serve { call IO.read; call IO.write; emit http_200 }
}
class Api extends Handler {
  method serve { call DB.query; emit http_200 }
}

class DB {
  method query { call IO.read; call IO.write }
}

# The "syscall layer": every entry is logged with its calling context.
class IO {
  method read  { work 4; emit sys_read }
  method write { work 4; emit sys_write }
}
`

// logRecord is what a production system would persist: a tag plus the
// integer-sized context encoding — no stack walk, no strings.
type logRecord struct {
	tag string
	ctx deltapath.Context
}

func main() {
	prog, err := deltapath.ParseProgram(server)
	if err != nil {
		log.Fatal(err)
	}
	an, err := deltapath.Analyze(prog, deltapath.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: run the server; the log sink stores encodings only.
	var journal []logRecord
	if _, err := an.Run(7, func(c deltapath.Context) {
		journal = append(journal, logRecord{tag: c.Tag, ctx: c})
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d log records\n\n", len(journal))

	// Phase 2 (offline or on demand): decode and aggregate. Identical
	// keys are identical contexts, so grouping happens before decoding.
	type group struct {
		rec   logRecord
		count int
	}
	groups := make(map[string]*group)
	for _, r := range journal {
		k := r.tag + "|" + r.ctx.Key()
		if g, ok := groups[k]; ok {
			g.count++
		} else {
			groups[k] = &group{rec: r, count: 1}
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		gi, gj := groups[keys[i]], groups[keys[j]]
		if gi.count != gj.count {
			return gi.count > gj.count
		}
		return keys[i] < keys[j]
	})
	fmt.Println("events by calling context:")
	for _, k := range keys {
		g := groups[k]
		names, err := an.Decode(g.rec.ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4dx %-10s %s\n", g.count, g.rec.tag, strings.Join(names, " > "))
	}
}
