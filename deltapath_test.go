package deltapath

import (
	"bytes"
	"strings"
	"testing"
)

const testSrc = `
entry Main.main
class Main {
  method main {
    load Plug
    call Main.work
    loop 4 { vcall Base.go }
    emit top
  }
  method work { emit w }
}
class Base { method go { emit g } }
class Sub extends Base { method go { call Main.work; emit g } }
library class Lib { method helper { work 1 } }
dynamic class Plug extends Base { method go { call Main.work; emit p } }
`

func TestAnalyzeRunDecode(t *testing.T) {
	prog, err := ParseProgram(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	contexts, err := an.Run(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(contexts) == 0 {
		t.Fatal("no contexts captured")
	}
	for _, c := range contexts {
		if c.At.Class == "Plug" {
			if _, err := an.Decode(c); err == nil {
				t.Error("emit inside a dynamic class decoded without error")
			}
			continue
		}
		names, err := an.Decode(c)
		if err != nil {
			t.Fatalf("decode at %s: %v", c.At, err)
		}
		if names[0] != "Main.main" {
			t.Fatalf("context does not start at entry: %v", names)
		}
		last := names[len(names)-1]
		if last != c.At.String() {
			t.Fatalf("context ends at %s, emitted at %s", last, c.At)
		}
	}
}

func TestKeysIdentifyContexts(t *testing.T) {
	prog, err := ParseProgram(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	decodedByKey := make(map[string]string)
	for seed := uint64(0); seed < 6; seed++ {
		contexts, err := an.Run(seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range contexts {
			names, err := an.Decode(c)
			if err != nil {
				continue
			}
			joined := strings.Join(names, ">")
			if prev, ok := decodedByKey[c.Key()]; ok && prev != joined {
				t.Fatalf("key %q decodes as %q and %q", c.Key(), prev, joined)
			}
			decodedByKey[c.Key()] = joined
		}
	}
	if len(decodedByKey) < 3 {
		t.Fatalf("too few distinct contexts: %d", len(decodedByKey))
	}
}

func TestApplicationOnly(t *testing.T) {
	prog, err := ParseProgram(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	all, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	app, err := Analyze(prog, Options{ApplicationOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if app.NumInstrumentedSites() > all.NumInstrumentedSites() {
		t.Fatalf("application-only instruments more sites (%d) than all (%d)",
			app.NumInstrumentedSites(), all.NumInstrumentedSites())
	}
}

func TestSessionHazards(t *testing.T) {
	prog, err := ParseProgram(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := an.NewSession(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	// The Plug dynamic class calls Main.work: with some dispatch seeds the
	// plugin is selected and the hazard fires. Across seeds at least one
	// must.
	total := s.Hazards()
	for seed := uint64(3); seed < 10 && total == 0; seed++ {
		s2, err := an.NewSession(seed)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s2.Run(nil); err != nil {
			t.Fatal(err)
		}
		total += s2.Hazards()
	}
	if total == 0 {
		t.Fatal("dynamic plugin never produced a hazardous UCP across seeds")
	}
}

func TestAnchorsReported(t *testing.T) {
	// A doubling-diamond program with a tiny MaxID must report anchors.
	var b strings.Builder
	b.WriteString("entry L0.a\n")
	b.WriteString("class L0 { method a { call L1.a; call L1.b } method b { call L1.a; call L1.b } }\n")
	for i := 1; i < 8; i++ {
		next := i + 1
		if next < 8 {
			b.WriteString(strings.ReplaceAll(strings.ReplaceAll(
				"class LI { method a { call LN.a; call LN.b } method b { call LN.a; call LN.b } }\n",
				"LI", nodeName(i)), "LN", nodeName(next)))
		} else {
			b.WriteString("class " + nodeName(i) + " { method a { emit leaf } method b { emit leaf } }\n")
		}
	}
	prog, err := ParseProgram(b.String())
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(prog, Options{MaxID: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Anchors()) == 0 {
		t.Fatal("no anchors reported despite MaxID 15")
	}
	if an.MaxID() > 15 {
		t.Fatalf("MaxID %d exceeds configured limit", an.MaxID())
	}
	// And the encoding still round-trips.
	contexts, err := an.Run(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range contexts {
		if _, err := an.Decode(c); err != nil {
			t.Fatalf("decode with anchors: %v", err)
		}
	}
}

func nodeName(i int) string { return "L" + string(rune('0'+i)) }

func TestBadProgramRejected(t *testing.T) {
	if _, err := ParseProgram("class A {"); err == nil {
		t.Fatal("malformed program accepted")
	}
	prog, err := ParseProgram("entry A.m\nclass A { method m { } }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(prog, Options{}); err != nil {
		t.Fatalf("minimal program rejected: %v", err)
	}
}

// TestPrunedEncoding exercises Section 8's pruned encoding: only methods
// leading to the target are encoded, the rest is skipped, and contexts of
// the target remain exact (with gaps over skipped code).
func TestPrunedEncoding(t *testing.T) {
	src := `
entry M.main
class M {
  method main {
    loop 3 { call M.request }
    call M.housekeeping
    emit top
  }
  method request { call M.parse; call M.respond }
  method parse { call M.target }
  method respond { work 2 }
  method housekeeping { call M.gc }
  method gc { work 5 }
  method target { emit hit }
}
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Analyze(prog, Options{TargetMethods: []string{"M.target"}})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.NumInstrumentedSites() >= full.NumInstrumentedSites() {
		t.Fatalf("pruned encoding instruments %d sites, full %d — no savings",
			pruned.NumInstrumentedSites(), full.NumInstrumentedSites())
	}
	contexts, err := pruned.Run(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, c := range contexts {
		if c.Tag != "hit" {
			continue
		}
		hits++
		names, err := pruned.Decode(c)
		if err != nil {
			t.Fatalf("decode target context: %v", err)
		}
		want := "M.main>M.request>M.parse>M.target"
		var got []string
		for _, n := range names {
			if n != "..." {
				got = append(got, n)
			}
		}
		if strings.Join(got, ">") != want {
			t.Fatalf("target context = %v, want %s", names, want)
		}
	}
	if hits != 3 {
		t.Fatalf("target emitted %d times, want 3", hits)
	}
	// Pruning with CPT disabled must be rejected.
	if _, err := Analyze(prog, Options{TargetMethods: []string{"M.target"}, DisableCPT: true}); err == nil {
		t.Fatal("pruned encoding without CPT accepted")
	}
	// Unknown targets must be rejected.
	if _, err := Analyze(prog, Options{TargetMethods: []string{"M.nope"}}); err == nil {
		t.Fatal("unknown target accepted")
	}
	if _, err := Analyze(prog, Options{TargetMethods: []string{"garbage"}}); err == nil {
		t.Fatal("unqualified target accepted")
	}
}

// TestTrunkAnchors exercises the hybrid-encoding building block: forcing
// profiled "trunk" methods to be anchors shrinks the encoding space while
// round trips stay exact.
func TestTrunkAnchors(t *testing.T) {
	// A doubling diamond: trunk anchor in the middle halves the space.
	src := `
entry T.main
class T {
  method main { call T.a1; call T.b1 }
  method a1 { call T.mid }
  method b1 { call T.mid }
  method mid { call T.a2; call T.b2 }
  method a2 { call T.leaf }
  method b2 { call T.leaf }
  method leaf { emit leaf }
}
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	trunk, err := Analyze(prog, Options{TrunkAnchors: []string{"T.mid"}})
	if err != nil {
		t.Fatal(err)
	}
	if trunk.MaxID() >= plain.MaxID() {
		t.Fatalf("trunk anchor did not shrink the space: %d vs %d", trunk.MaxID(), plain.MaxID())
	}
	contexts, err := trunk.Run(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, c := range contexts {
		names, err := trunk.Decode(c)
		if err != nil {
			t.Fatal(err)
		}
		seen[strings.Join(names, ">")] = true
	}
	for _, want := range []string{
		"T.main>T.a1>T.mid>T.a2>T.leaf",
		"T.main>T.b1>T.mid>T.b2>T.leaf",
	} {
		if !seen[want] {
			t.Fatalf("context %s not observed; got %v", want, seen)
		}
	}
	if _, err := Analyze(prog, Options{TrunkAnchors: []string{"T.ghost"}}); err == nil {
		t.Fatal("unknown trunk anchor accepted")
	}
}

func TestContextSerializationRoundTrip(t *testing.T) {
	prog, err := ParseProgram(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	contexts, err := an.Run(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	serialized := 0
	for _, c := range contexts {
		rec, err := c.MarshalBinary()
		if err != nil {
			continue // unanalysed emit (inside the dynamic plugin)
		}
		serialized++
		want, err := an.Decode(c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := an.DecodeBytes(rec)
		if err != nil {
			t.Fatalf("DecodeBytes: %v", err)
		}
		if strings.Join(got, ">") != strings.Join(want, ">") {
			t.Fatalf("serialized decode %v != live decode %v", got, want)
		}
		if len(rec) > 64 {
			t.Fatalf("record unexpectedly large: %d bytes", len(rec))
		}
	}
	if serialized == 0 {
		t.Fatal("nothing serialized")
	}
	if _, err := an.DecodeBytes([]byte{255}); err == nil {
		t.Fatal("corrupt record accepted")
	}
}

// TestSpawnedTasksDecode: executor tasks root their contexts at the task
// entry; the public API decodes them exactly.
func TestSpawnedTasksDecode(t *testing.T) {
	prog, err := ParseProgram(`
entry M.main
class M {
  method main { spawn W.run; call W.helper; emit main_done }
}
class W {
  method run { call W.helper; emit ran }
  method helper { emit h }
}`)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := an.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	if _, err := s.Run(func(c Context) {
		names, err := an.Decode(c)
		if err != nil {
			t.Fatalf("decode at %s: %v", c.At, err)
		}
		got = append(got, strings.Join(names, ">"))
	}); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"M.main>W.helper": true, // synchronous call from main
		"M.main":          true,
		"W.run>W.helper":  true, // task-rooted context
		"W.run":           true,
	}
	seen := map[string]bool{}
	for _, g := range got {
		seen[g] = true
	}
	for w := range want {
		if !seen[w] {
			t.Fatalf("context %s not observed; got %v", w, got)
		}
	}
	if s.VM().Tasks != 1 {
		t.Fatalf("tasks run = %d, want 1", s.VM().Tasks)
	}
}

// TestOfflineDecoderWorkflow: save the analysis, record contexts, decode
// them with a decoder restored from the file — no program in sight.
func TestOfflineDecoderWorkflow(t *testing.T) {
	prog, err := ParseProgram(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var artifact bytes.Buffer
	if err := an.SaveAnalysis(&artifact); err != nil {
		t.Fatal(err)
	}
	var records [][]byte
	var want []string
	if _, err := an.Run(3, func(c Context) {
		rec, err := c.MarshalBinary()
		if err != nil {
			return
		}
		names, err := an.Decode(c)
		if err != nil {
			t.Fatal(err)
		}
		records = append(records, rec)
		want = append(want, strings.Join(names, ">"))
	}); err != nil {
		t.Fatal(err)
	}
	dec, err := LoadDecoder(&artifact)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range records {
		names, err := dec.DecodeBytes(rec)
		if err != nil {
			t.Fatalf("offline decode %d: %v", i, err)
		}
		if got := strings.Join(names, ">"); got != want[i] {
			t.Fatalf("offline decode %d: %s, want %s", i, got, want[i])
		}
	}
	if _, err := LoadDecoder(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("junk analysis accepted")
	}
}
